//! Pub-sub workload drivers: closed-loop and open-loop publishers, and a
//! push-consuming subscriber that verifies gap-free delivery and returns
//! byte credit.
//!
//! Drivers mirror the `suca-load` generator contract: each returns a
//! [`LoadStats`] whose accounting identity
//! (`completed + shed + timed_out == issued`) must hold on return.

use suca_bcl::{BclError, ProcAddr};
use suca_load::{absorb_completion as absorb_one, LatencyHists, LoadStats};
use suca_rpc::{RpcClient, RpcStatus};
use suca_sim::{ActorCtx, SimDuration, SimRng, SimTime};

use crate::wire::{
    dec_event, dec_seq, enc_ack, enc_event, enc_subscribe, FLAG_EOF, FLAG_SHED, OP_ACK, OP_PUBLISH,
    OP_SUBSCRIBE,
};

/// Deterministic event body for `(room, index)` — content only; ordering
/// is what subscribers verify.
pub fn event_body(room: u32, index: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut x = (u64::from(room) << 32) ^ index ^ 0x5CA7_B00C;
    while out.len() < len {
        // splitmix64 finalizer — the same mixing the sim RNG builds on.
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        out.extend_from_slice(&(x ^ (x >> 31)).to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Closed-loop publisher configuration.
#[derive(Clone, Copy, Debug)]
pub struct PublisherCfg {
    /// Events to publish.
    pub events: u32,
    /// Bytes per event body.
    pub bytes: usize,
    /// Think-time bounds between publishes (uniform, exclusive of max).
    pub think_min: SimDuration,
    /// See `think_min`.
    pub think_max: SimDuration,
    /// Mark the final event `FLAG_EOF` so subscribers can finish cleanly.
    pub eof: bool,
}

/// Publish `cfg.events` events to `room`, one at a time (closed loop).
pub fn run_publisher(
    ctx: &mut ActorCtx,
    client: &mut RpcClient,
    server: ProcAddr,
    room: u32,
    rng: &mut SimRng,
    cfg: &PublisherCfg,
    hists: &LatencyHists,
) -> LoadStats {
    assert!(
        cfg.think_min < cfg.think_max,
        "think_min must be < think_max"
    );
    let mut stats = LoadStats::default();
    for i in 0..u64::from(cfg.events) {
        ctx.sleep(SimDuration::from_ns(
            rng.range(cfg.think_min.as_ns(), cfg.think_max.as_ns()),
        ));
        let flags = if cfg.eof && i + 1 == u64::from(cfg.events) {
            FLAG_EOF
        } else {
            0
        };
        let payload = enc_event(room, flags, &event_body(room, i, cfg.bytes));
        match client.call(ctx, server, OP_PUBLISH, &payload) {
            Ok(c) => {
                stats.issued += 1;
                absorb_one(&c, &mut stats, hists);
            }
            Err(e) => {
                if matches!(e, BclError::PathDead(_)) {
                    stats.dead_dest += 1;
                }
                stats.client_shed += 1;
            }
        }
    }
    client.quiesce(ctx, cfg.think_max);
    stats
}

/// Open-loop (flood) publisher configuration — the overload instrument.
#[derive(Clone, Copy, Debug)]
pub struct FloodCfg {
    /// Mean inter-arrival gap (exponential draws).
    pub mean_interarrival: SimDuration,
    /// How long to generate arrivals for.
    pub duration: SimDuration,
    /// Bytes per event body.
    pub bytes: usize,
}

/// Flood `room` with publishes for `cfg.duration` regardless of
/// outstanding work, then drain. Arena exhaustion drops arrivals
/// client-side (counted), exactly like the suca-load open loop.
pub fn run_publisher_open(
    ctx: &mut ActorCtx,
    client: &mut RpcClient,
    server: ProcAddr,
    room: u32,
    rng: &mut SimRng,
    cfg: &FloodCfg,
    hists: &LatencyHists,
) -> LoadStats {
    let exp_gap = |rng: &mut SimRng| {
        let u = rng.unit_f64();
        SimDuration::from_ns(
            ((-(1.0 - u).ln()) * cfg.mean_interarrival.as_ns() as f64)
                .round()
                .max(1.0) as u64,
        )
    };
    let start = ctx.now();
    let stop = start + cfg.duration;
    let mut next_arrival = start + exp_gap(rng);
    let mut stats = LoadStats::default();
    let mut index = 0u64;
    loop {
        let now = ctx.now();
        if now >= stop {
            break;
        }
        if next_arrival <= now {
            next_arrival += exp_gap(rng);
            let payload = enc_event(room, 0, &event_body(room, index, cfg.bytes));
            index += 1;
            if client.can_issue() {
                match client.issue(ctx, server, OP_PUBLISH, &payload, 0) {
                    Ok(_) => stats.issued += 1,
                    Err(e) => {
                        if matches!(e, BclError::PathDead(_)) {
                            stats.dead_dest += 1;
                        }
                        stats.client_shed += 1;
                    }
                }
            } else {
                stats.client_shed += 1;
            }
            for c in client.advance(ctx) {
                absorb_one(&c, &mut stats, hists);
            }
            continue;
        }
        let wait = next_arrival.since(now).min(stop.since(now));
        for c in client.pump(ctx, wait) {
            absorb_one(&c, &mut stats, hists);
        }
    }
    while client.in_flight() > 0 {
        for c in client.pump(ctx, SimDuration::from_us(500)) {
            absorb_one(&c, &mut stats, hists);
        }
    }
    client.quiesce(ctx, cfg.mean_interarrival * 4);
    stats
}

/// Subscriber configuration.
#[derive(Clone, Copy, Debug)]
pub struct SubscriberCfg {
    /// Replay start (`u64::MAX` = tail: future events only).
    pub from: u64,
    /// Return credit after this many received bytes.
    pub ack_every: u64,
    /// Hard deadline: stop pumping at this instant even without EOF (the
    /// simulation must end even if a publisher was shed mid-stream).
    pub end_at: SimTime,
    /// Stop after observing this many `FLAG_EOF` events (one per
    /// publisher feeding the room; 0 = rely on `end_at`).
    pub eofs_expected: u32,
}

/// What one subscriber observed.
#[derive(Clone, Copy, Debug, Default)]
pub struct SubStats {
    /// Replay start sequence granted by the room.
    pub start_seq: u64,
    /// Events received (fresh + catch-up).
    pub received: u64,
    /// Event-body bytes received.
    pub bytes: u64,
    /// Sequence discontinuities observed — must be 0: the room sheds
    /// rather than skips.
    pub gaps: u64,
    /// EOF sentinels observed.
    pub eofs: u32,
    /// True when the room shed this subscriber (lag/retention).
    pub shed: bool,
}

/// Subscribe to `room` and consume pushes until the expected EOFs, a shed
/// notice, or the deadline. Returns the control-RPC tallies (subscribe +
/// acks) and the stream's observations.
pub fn run_subscriber(
    ctx: &mut ActorCtx,
    client: &mut RpcClient,
    server: ProcAddr,
    room: u32,
    cfg: &SubscriberCfg,
    hists: &LatencyHists,
) -> (LoadStats, SubStats) {
    let mut stats = LoadStats::default();
    let mut sub = SubStats::default();
    match client.call(ctx, server, OP_SUBSCRIBE, &enc_subscribe(room, cfg.from)) {
        Ok(c) => {
            stats.issued += 1;
            if c.status == RpcStatus::Ok {
                sub.start_seq = dec_seq(&c.payload).unwrap_or(0);
            }
            absorb_one(&c, &mut stats, hists);
        }
        Err(_) => {
            stats.client_shed += 1;
            return (stats, sub);
        }
    }
    let mut expected = sub.start_seq;
    let mut unacked = 0u64;
    let done =
        |sub: &SubStats| sub.shed || (cfg.eofs_expected > 0 && sub.eofs >= cfg.eofs_expected);
    while !done(&sub) && ctx.now() < cfg.end_at {
        let wait = SimDuration::from_us(200).min(cfg.end_at.since(ctx.now()));
        for c in client.pump(ctx, wait) {
            absorb_one(&c, &mut stats, hists);
        }
        for ev in client.take_pushes() {
            let Some((_, flags, data)) = dec_event(&ev.payload) else {
                stats.bad_payloads += 1;
                continue;
            };
            if flags & FLAG_SHED != 0 {
                sub.shed = true;
                break;
            }
            if ev.seq != expected {
                sub.gaps += 1;
            }
            expected = ev.seq + 1;
            sub.received += 1;
            sub.bytes += data.len() as u64;
            unacked += data.len() as u64 + 1; // +1: the stored flags byte
            if flags & FLAG_EOF != 0 {
                sub.eofs += 1;
            }
        }
        if unacked >= cfg.ack_every && client.can_issue() {
            let credit = unacked.min(u64::from(u32::MAX)) as u32;
            match client.issue(ctx, server, OP_ACK, &enc_ack(room, credit), 0) {
                Ok(_) => {
                    stats.issued += 1;
                    unacked = 0;
                }
                Err(_) => stats.client_shed += 1,
            }
        }
    }
    while client.in_flight() > 0 {
        for c in client.pump(ctx, SimDuration::from_us(500)) {
            absorb_one(&c, &mut stats, hists);
        }
    }
    client.quiesce(ctx, SimDuration::from_us(500));
    (stats, sub)
}
