//! The pub-sub service: rooms behind an RPC handler.
//!
//! Plug into [`suca_rpc::RpcServer::serve_tenants_until_idle`] as
//! `&mut |ctx, req| svc.handle(ctx, req)` — or compose it into a
//! multi-tenant dispatcher that routes by `req.tenant`. Fan-out deliveries
//! and shed notices come back as [`RpcPush`]es on the reply; the RPC layer
//! sends them after the response, so a subscriber always learns its replay
//! start before the first push can arrive.

use std::collections::HashMap;

use suca_bcl::ProcAddr;
use suca_rpc::{RpcPush, RpcReply, RpcRequest};
use suca_sim::mtrace::stage;
use suca_sim::{ActorCtx, Counter, Metrics, SimDuration, TraceEvent, TraceId, TraceLayer};

use crate::room::{DeliveryKind, Room, RoomCfg, RoomStats};
use crate::wire::{
    dec_ack, dec_event, dec_history, dec_subscribe, enc_event, enc_history_resp, enc_seq,
    FLAG_SHED, OP_ACK, OP_HISTORY, OP_PUBLISH, OP_SUBSCRIBE,
};

/// Virtual service time per op class (handler sleeps; RPC/BCL costs come
/// on top).
#[derive(Clone, Copy, Debug)]
pub struct PubSubCosts {
    /// Append + fan-out classification.
    pub publish: SimDuration,
    /// Subscriber-table insert + replay setup.
    pub subscribe: SimDuration,
    /// Log range read (replay).
    pub history: SimDuration,
    /// Credit return + catch-up.
    pub ack: SimDuration,
}

impl Default for PubSubCosts {
    fn default() -> Self {
        PubSubCosts {
            publish: SimDuration::from_ns(2_000),
            subscribe: SimDuration::from_ns(1_500),
            history: SimDuration::from_us(8),
            ack: SimDuration::from_ns(1_000),
        }
    }
}

/// Pack a port address into the room-model subscriber key.
fn sub_key(addr: ProcAddr) -> u64 {
    (u64::from(addr.node.0) << 16) | u64::from(addr.port.0)
}

/// One node's pub-sub service: a set of rooms plus the address map that
/// turns room-model subscriber keys back into push destinations.
pub struct PubSubService {
    rooms: HashMap<u32, Room>,
    addrs: HashMap<u64, ProcAddr>,
    room_cfg: RoomCfg,
    costs: PubSubCosts,
    node: u32,
    c_published: Counter,
    c_fanout_sent: Counter,
    c_fanout_throttled: Counter,
    c_fanout_shed: Counter,
    c_catchup_sent: Counter,
    c_subs_shed: Counter,
    c_history_events: Counter,
    c_acks: Counter,
    c_malformed: Counter,
}

impl PubSubService {
    /// Empty service on `node` (the trace-instant attribution node).
    pub fn new(m: &Metrics, node: u32, room_cfg: RoomCfg, costs: PubSubCosts) -> Self {
        PubSubService {
            rooms: HashMap::new(),
            addrs: HashMap::new(),
            room_cfg,
            costs,
            node,
            c_published: m.counter("pubsub.published"),
            c_fanout_sent: m.counter("pubsub.fanout_sent"),
            c_fanout_throttled: m.counter("pubsub.fanout_throttled"),
            c_fanout_shed: m.counter("pubsub.fanout_shed"),
            c_catchup_sent: m.counter("pubsub.catchup_sent"),
            c_subs_shed: m.counter("pubsub.subs_shed"),
            c_history_events: m.counter("pubsub.history_events"),
            c_acks: m.counter("pubsub.acks"),
            c_malformed: m.counter("pubsub.malformed"),
        }
    }

    /// Summed tallies across this node's rooms (the per-node slice of the
    /// fan-out accounting identity).
    pub fn stats(&self) -> RoomStats {
        let mut total = RoomStats::default();
        for r in self.rooms.values() {
            let s = r.stats();
            total.published += s.published;
            total.expected_fanout += s.expected_fanout;
            total.fanout_sent += s.fanout_sent;
            total.fanout_throttled += s.fanout_throttled;
            total.fanout_shed += s.fanout_shed;
            total.catchup_sent += s.catchup_sent;
            total.subs_shed += s.subs_shed;
        }
        total
    }

    /// Execute one request. Malformed payloads get an empty response and a
    /// `pubsub.malformed` count (the client's decoder treats the empty
    /// body as a failed verification), never a panic.
    pub fn handle(&mut self, ctx: &mut ActorCtx, req: &RpcRequest<'_>) -> RpcReply {
        let key = sub_key(req.src);
        self.addrs.insert(key, req.src);
        match req.op_class {
            OP_PUBLISH => {
                let Some((room_id, flags, data)) = dec_event(req.payload) else {
                    return self.malformed();
                };
                ctx.sleep(self.costs.publish);
                let room = self
                    .rooms
                    .entry(room_id)
                    .or_insert_with(|| Room::new(self.room_cfg));
                // The event record stored in the room is `flags | data`, so
                // flags (EOF sentinels) survive throttling and replay via
                // credit — a subscriber catching up still sees the EOF.
                let mut record = Vec::with_capacity(1 + data.len());
                record.push(flags);
                record.extend_from_slice(data);
                let (seq, out) = room.publish(&record);
                self.c_published.inc();
                self.c_fanout_throttled.add(out.throttled);
                let pushes = self.deliveries_to_pushes(ctx, req, room_id, out.deliveries);
                RpcReply {
                    payload: enc_seq(seq),
                    pushes,
                }
            }
            OP_SUBSCRIBE => {
                let Some((room_id, from)) = dec_subscribe(req.payload) else {
                    return self.malformed();
                };
                ctx.sleep(self.costs.subscribe);
                let room = self
                    .rooms
                    .entry(room_id)
                    .or_insert_with(|| Room::new(self.room_cfg));
                let (start, replay) = room.subscribe(key, from);
                let pushes = self.deliveries_to_pushes(ctx, req, room_id, replay);
                RpcReply {
                    payload: enc_seq(start),
                    pushes,
                }
            }
            OP_HISTORY => {
                let Some((room_id, from, max)) = dec_history(req.payload) else {
                    return self.malformed();
                };
                ctx.sleep(self.costs.history);
                let (first, items) = match self.rooms.get(&room_id) {
                    Some(room) => room.history(from, max.min(64)),
                    None => (0, Vec::new()),
                };
                self.c_history_events.add(items.len() as u64);
                RpcReply::inline(enc_history_resp(first, &items))
            }
            OP_ACK => {
                let Some((room_id, bytes)) = dec_ack(req.payload) else {
                    return self.malformed();
                };
                ctx.sleep(self.costs.ack);
                let replay = match self.rooms.get_mut(&room_id) {
                    Some(room) => room.credit(key, u64::from(bytes)),
                    None => Vec::new(),
                };
                self.c_acks.inc();
                let pushes = self.deliveries_to_pushes(ctx, req, room_id, replay);
                RpcReply {
                    payload: enc_seq(0),
                    pushes,
                }
            }
            _ => self.malformed(),
        }
    }

    fn malformed(&self) -> RpcReply {
        self.c_malformed.inc();
        RpcReply::inline(Vec::new())
    }

    /// Turn room deliveries into wire pushes, counting each kind.
    /// Delivered records are `flags | data` (see `OP_PUBLISH`); sheds
    /// become `FLAG_SHED` notices and land on the trace's pub-sub track.
    fn deliveries_to_pushes(
        &mut self,
        ctx: &ActorCtx,
        req: &RpcRequest<'_>,
        room_id: u32,
        deliveries: Vec<crate::room::Delivery>,
    ) -> Vec<RpcPush> {
        let mut pushes = Vec::with_capacity(deliveries.len());
        for d in deliveries {
            let counter = match d.kind {
                DeliveryKind::Fresh => &self.c_fanout_sent,
                DeliveryKind::Catchup => &self.c_catchup_sent,
                DeliveryKind::Shed => &self.c_fanout_shed,
                DeliveryKind::Evicted => &self.c_subs_shed,
            };
            counter.inc();
            let (wire_flags, data) = match d.kind {
                DeliveryKind::Fresh | DeliveryKind::Catchup => (d.payload[0], &d.payload[1..]),
                DeliveryKind::Shed | DeliveryKind::Evicted => (FLAG_SHED, &[][..]),
            };
            if wire_flags & FLAG_SHED != 0 {
                let sim = ctx.sim();
                if sim.msg_trace().enabled() {
                    sim.trace_event(TraceEvent::instant(
                        TraceId::NONE,
                        self.node,
                        TraceLayer::Rpc,
                        stage::PUBSUB_SHED,
                        ctx.now().as_ns(),
                    ));
                }
            }
            let Some(&dst) = self.addrs.get(&d.sub) else {
                // A subscriber we never saw an address for cannot happen
                // (keys are minted from request sources), but count it
                // rather than trust that forever.
                self.c_malformed.inc();
                continue;
            };
            pushes.push(RpcPush {
                dst,
                tenant: req.tenant,
                op_class: OP_PUBLISH,
                seq: d.seq,
                payload: enc_event(room_id, wire_flags, data),
            });
        }
        pushes
    }
}
