//! The room model: a sequence-numbered event log with bounded retention
//! and byte-budgeted per-subscriber fan-out.
//!
//! This module is pure (no sim, no I/O) so its invariants are
//! property-testable in isolation:
//!
//! * **Gap-free prefix** — a subscriber only ever receives the next
//!   contiguous sequence it has not yet seen; a subscriber that cannot be
//!   kept contiguous (lag past the bound, or retention evicted its
//!   backlog) is *shed* with a notice, never given a gap.
//! * **Fan-out accounting** — every `(publish, subscriber present at that
//!   publish)` pair resolves exactly once:
//!   `fanout_sent + fanout_throttled + fanout_shed == Σ subscribers at
//!   publish`. Catch-up deliveries (throttled work completing later via
//!   credit) and retention sheds are counted separately.

use std::collections::{BTreeMap, VecDeque};

/// Room policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct RoomCfg {
    /// Retained log events; older events are evicted and a subscriber
    /// still needing them is shed at its next catch-up.
    pub retention: usize,
    /// Maximum events a subscriber may lag behind the log head before the
    /// room sheds it (the slow-subscriber bound).
    pub max_lag: u64,
    /// Initial fan-out byte credit granted at subscribe; replenished by
    /// ACKs.
    pub init_window: u64,
}

impl Default for RoomCfg {
    fn default() -> Self {
        RoomCfg {
            retention: 1024,
            max_lag: 256,
            init_window: 64 * 1024,
        }
    }
}

/// Why a delivery record exists.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryKind {
    /// Pushed at publish time to a caught-up subscriber with credit.
    Fresh,
    /// Pushed during catch-up (subscribe replay or credit return).
    Catchup,
    /// Shed at publish time: the subscriber lagged past `max_lag`.
    Shed,
    /// Shed at catch-up time: retention evicted its next event.
    Evicted,
}

/// One delivery (or shed notice) the room wants sent to a subscriber.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// Subscriber key (the service maps this to a port address).
    pub sub: u64,
    /// Event sequence (for sheds: the next sequence the subscriber would
    /// have needed).
    pub seq: u64,
    /// Fresh / catch-up / shed.
    pub kind: DeliveryKind,
    /// Event bytes (empty for sheds).
    pub payload: Vec<u8>,
}

/// What one publish resolved to across the subscriber set.
#[derive(Debug, Default)]
pub struct PublishOutcome {
    /// Fresh deliveries plus shed notices, in subscriber-key order.
    pub deliveries: Vec<Delivery>,
    /// Subscribers throttled this publish (no delivery now; they catch up
    /// via credit or get shed later).
    pub throttled: u64,
}

/// Monotonic room tallies. The fan-out identity
/// `fanout_sent + fanout_throttled + fanout_shed == expected_fanout` holds
/// after every operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoomStats {
    /// Events appended.
    pub published: u64,
    /// Σ subscribers present at each publish (the identity's right side).
    pub expected_fanout: u64,
    /// Fresh deliveries at publish time.
    pub fanout_sent: u64,
    /// Publish-time throttles (no credit or already lagging).
    pub fanout_throttled: u64,
    /// Publish-time sheds (lag exceeded `max_lag`).
    pub fanout_shed: u64,
    /// Catch-up deliveries (replay of throttled events).
    pub catchup_sent: u64,
    /// Subscribers shed at catch-up because retention evicted their next
    /// event.
    pub subs_shed: u64,
}

impl RoomStats {
    /// True when every `(publish, subscriber)` pair resolved exactly once.
    pub fn balanced(&self) -> bool {
        self.fanout_sent + self.fanout_throttled + self.fanout_shed == self.expected_fanout
    }
}

struct Sub {
    /// Next sequence this subscriber must receive (contiguity cursor).
    next_seq: u64,
    /// Remaining fan-out byte credit.
    window: u64,
}

/// One room: log + subscriber table + tallies. Deterministic by
/// construction — subscribers iterate in key order (`BTreeMap`) and all
/// state changes are pure functions of the call sequence.
pub struct Room {
    cfg: RoomCfg,
    log: VecDeque<(u64, Vec<u8>)>,
    first_seq: u64,
    next_seq: u64,
    subs: BTreeMap<u64, Sub>,
    stats: RoomStats,
}

impl Room {
    /// Empty room.
    pub fn new(cfg: RoomCfg) -> Room {
        Room {
            cfg,
            log: VecDeque::new(),
            first_seq: 0,
            next_seq: 0,
            subs: BTreeMap::new(),
            stats: RoomStats::default(),
        }
    }

    /// Sequence the next publish will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Oldest retained sequence.
    pub fn first_seq(&self) -> u64 {
        self.first_seq
    }

    /// Current subscriber count.
    pub fn subscribers(&self) -> usize {
        self.subs.len()
    }

    /// Tallies so far.
    pub fn stats(&self) -> RoomStats {
        self.stats
    }

    /// Register subscriber `key` starting at `from` (`u64::MAX` = the tail,
    /// i.e. only future events). Returns the clamped start sequence and
    /// any immediate catch-up deliveries (replay of retained history the
    /// initial window covers). Re-subscribing an existing key resets its
    /// cursor and window.
    pub fn subscribe(&mut self, key: u64, from: u64) -> (u64, Vec<Delivery>) {
        let start = if from == u64::MAX {
            self.next_seq
        } else {
            from.clamp(self.first_seq, self.next_seq)
        };
        self.subs.insert(
            key,
            Sub {
                next_seq: start,
                window: self.cfg.init_window,
            },
        );
        (start, self.catch_up(key))
    }

    /// Remove subscriber `key` (EOF observed, client done). Returns true
    /// when it was present.
    pub fn unsubscribe(&mut self, key: u64) -> bool {
        self.subs.remove(&key).is_some()
    }

    /// Return `bytes` of fan-out credit to subscriber `key`, then replay
    /// whatever backlog the refreshed window covers.
    pub fn credit(&mut self, key: u64, bytes: u64) -> Vec<Delivery> {
        let Some(sub) = self.subs.get_mut(&key) else {
            return Vec::new();
        };
        sub.window = sub.window.saturating_add(bytes);
        self.catch_up(key)
    }

    /// Append one event and fan it out: each current subscriber resolves
    /// to exactly one of fresh-delivery / throttle / shed.
    pub fn publish(&mut self, data: &[u8]) -> (u64, PublishOutcome) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.log.push_back((seq, data.to_vec()));
        while self.log.len() > self.cfg.retention {
            self.log.pop_front();
            self.first_seq += 1;
        }
        self.stats.published += 1;
        self.stats.expected_fanout += self.subs.len() as u64;
        let mut out = PublishOutcome::default();
        let len = data.len() as u64;
        let mut shed_keys = Vec::new();
        for (&key, sub) in self.subs.iter_mut() {
            if sub.next_seq == seq && sub.window >= len {
                sub.window -= len;
                sub.next_seq = seq + 1;
                self.stats.fanout_sent += 1;
                out.deliveries.push(Delivery {
                    sub: key,
                    seq,
                    kind: DeliveryKind::Fresh,
                    payload: data.to_vec(),
                });
            } else if self.next_seq - sub.next_seq <= self.cfg.max_lag {
                // Within the lag bound: no delivery now, catches up via
                // credit. (A caught-up subscriber without credit lands
                // here with lag 1.)
                self.stats.fanout_throttled += 1;
                out.throttled += 1;
            } else {
                shed_keys.push((key, sub.next_seq));
            }
        }
        for (key, next) in shed_keys {
            self.subs.remove(&key);
            self.stats.fanout_shed += 1;
            out.deliveries.push(Delivery {
                sub: key,
                seq: next,
                kind: DeliveryKind::Shed,
                payload: Vec::new(),
            });
        }
        (seq, out)
    }

    /// Read up to `max` retained events starting at `from` (clamped to the
    /// retention window). Returns the oldest retained sequence so callers
    /// can tell truncation from emptiness.
    pub fn history(&self, from: u64, max: u32) -> (u64, Vec<(u64, &[u8])>) {
        let start = from.max(self.first_seq);
        let items = self
            .log
            .iter()
            .skip((start - self.first_seq) as usize)
            .take(max as usize)
            .map(|(seq, data)| (*seq, data.as_slice()))
            .collect();
        (self.first_seq, items)
    }

    /// Deliver subscriber `key`'s backlog in order while credit lasts. A
    /// subscriber whose next event fell off retention cannot be kept
    /// gap-free: it is shed with an `Evicted` notice.
    fn catch_up(&mut self, key: u64) -> Vec<Delivery> {
        let Some(sub) = self.subs.get_mut(&key) else {
            return Vec::new();
        };
        if sub.next_seq < self.first_seq {
            let next = sub.next_seq;
            self.subs.remove(&key);
            self.stats.subs_shed += 1;
            return vec![Delivery {
                sub: key,
                seq: next,
                kind: DeliveryKind::Evicted,
                payload: Vec::new(),
            }];
        }
        let mut out = Vec::new();
        while sub.next_seq < self.next_seq {
            let (seq, data) = &self.log[(sub.next_seq - self.first_seq) as usize];
            let len = data.len() as u64;
            if sub.window < len {
                break;
            }
            sub.window -= len;
            sub.next_seq += 1;
            self.stats.catchup_sent += 1;
            out.push(Delivery {
                sub: key,
                seq: *seq,
                kind: DeliveryKind::Catchup,
                payload: data.clone(),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(retention: usize, max_lag: u64, init_window: u64) -> RoomCfg {
        RoomCfg {
            retention,
            max_lag,
            init_window,
        }
    }

    #[test]
    fn tail_subscriber_gets_fresh_contiguous_events() {
        let mut r = Room::new(cfg(16, 8, 1024));
        let (start, replay) = r.subscribe(1, u64::MAX);
        assert_eq!(start, 0);
        assert!(replay.is_empty());
        for i in 0..4u64 {
            let (seq, out) = r.publish(&[0u8; 8]);
            assert_eq!(seq, i);
            assert_eq!(out.deliveries.len(), 1);
            assert_eq!(out.deliveries[0].seq, i);
            assert_eq!(out.deliveries[0].kind, DeliveryKind::Fresh);
        }
        assert!(r.stats().balanced());
        assert_eq!(r.stats().fanout_sent, 4);
    }

    #[test]
    fn exhausted_window_throttles_then_credit_replays() {
        let mut r = Room::new(cfg(16, 8, 8));
        r.subscribe(1, u64::MAX);
        let (_, out) = r.publish(&[0u8; 8]); // consumes the whole window
        assert_eq!(out.deliveries.len(), 1);
        let (_, out) = r.publish(&[0u8; 8]); // no credit left
        assert_eq!(out.throttled, 1);
        assert!(out.deliveries.is_empty());
        let replay = r.credit(1, 16);
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].seq, 1);
        assert_eq!(replay[0].kind, DeliveryKind::Catchup);
        assert!(r.stats().balanced());
    }

    #[test]
    fn lag_past_bound_sheds_with_notice() {
        let mut r = Room::new(cfg(64, 2, 4));
        r.subscribe(1, u64::MAX);
        // Window 4 < event size 8 ⇒ the sub never receives, lag grows.
        let (_, o1) = r.publish(&[0u8; 8]);
        assert_eq!(o1.throttled, 1); // lag 1
        let (_, o2) = r.publish(&[0u8; 8]);
        assert_eq!(o2.throttled, 1); // lag 2 == max_lag
        let (_, o3) = r.publish(&[0u8; 8]); // lag would be 3 ⇒ shed
        assert_eq!(o3.deliveries.len(), 1);
        assert_eq!(o3.deliveries[0].kind, DeliveryKind::Shed);
        assert_eq!(r.subscribers(), 0);
        assert!(r.stats().balanced());
        assert_eq!(r.stats().fanout_shed, 1);
    }

    #[test]
    fn retention_eviction_sheds_at_credit_time() {
        let mut r = Room::new(cfg(2, 64, 0)); // zero credit: always lags
        r.subscribe(1, u64::MAX);
        for _ in 0..4 {
            r.publish(&[0u8; 8]);
        }
        // first_seq advanced past the sub's cursor (0): credit sheds it.
        assert_eq!(r.first_seq(), 2);
        let replay = r.credit(1, 1 << 20);
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].kind, DeliveryKind::Evicted);
        assert_eq!(r.stats().subs_shed, 1);
        assert!(r.stats().balanced());
    }

    #[test]
    fn subscribe_from_history_replays_within_window() {
        let mut r = Room::new(cfg(16, 8, 20));
        for _ in 0..3 {
            r.publish(&[0u8; 8]);
        }
        let (start, replay) = r.subscribe(1, 0);
        assert_eq!(start, 0);
        // Window 20 covers two 8-byte events, not three.
        assert_eq!(replay.len(), 2);
        assert_eq!(replay[0].seq, 0);
        assert_eq!(replay[1].seq, 1);
        let more = r.credit(1, 8);
        assert_eq!(more.len(), 1);
        assert_eq!(more[0].seq, 2);
        assert!(r.stats().balanced());
    }

    #[test]
    fn history_clamps_to_retention() {
        let mut r = Room::new(cfg(2, 8, 0));
        for _ in 0..5 {
            r.publish(&[1u8; 4]);
        }
        let (first, items) = r.history(0, 10);
        assert_eq!(first, 3);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].0, 3);
        assert_eq!(items[1].0, 4);
        let (_, capped) = r.history(0, 1);
        assert_eq!(capped.len(), 1);
    }
}
