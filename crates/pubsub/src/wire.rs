//! Pub-sub wire formats: op classes, request/response encodings, and the
//! push-event payload.
//!
//! Everything is little-endian and length-prefixed where variable;
//! decoders return `None` on any malformed input so the service can count
//! garbage instead of panicking on it.

/// PUBLISH op class: append one event to a room's log. Request is
/// [`enc_publish`]; response is the assigned sequence number.
pub const OP_PUBLISH: u8 = 0;
/// SUBSCRIBE op class: register the calling port for a room's fan-out.
/// Request is [`enc_subscribe`]; response is the replay start sequence.
pub const OP_SUBSCRIBE: u8 = 1;
/// HISTORY op class: read a range of the room's retained log (the replay
/// path; large responses exercise RMA delivery).
pub const OP_HISTORY: u8 = 2;
/// ACK op class: return byte credit for this subscriber's fan-out window.
pub const OP_ACK: u8 = 3;

/// Histogram / SLO-report labels in op-class order (class ≥ 3 folds into
/// the last slot, mirroring the SLO-window convention).
pub const CLASS_NAMES: [&str; 4] = ["publish", "subscribe", "history", "other"];

/// Event flag: end-of-stream sentinel (publishers mark their final event).
pub const FLAG_EOF: u8 = 1;
/// Event flag: shed notice — the room dropped this subscriber for lagging
/// past the bound; the stream is over and a gap would follow.
pub const FLAG_SHED: u8 = 2;

/// Encode a PUBLISH request / push-event payload: `room u32 | flags u8 |
/// data`.
pub fn enc_event(room: u32, flags: u8, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + data.len());
    out.extend_from_slice(&room.to_le_bytes());
    out.push(flags);
    out.extend_from_slice(data);
    out
}

/// Decode a PUBLISH request / push-event payload.
pub fn dec_event(buf: &[u8]) -> Option<(u32, u8, &[u8])> {
    if buf.len() < 5 {
        return None;
    }
    let room = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    Some((room, buf[4], &buf[5..]))
}

/// Encode a SUBSCRIBE request: `room u32 | from u64` (`u64::MAX` = tail).
pub fn enc_subscribe(room: u32, from: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    out.extend_from_slice(&room.to_le_bytes());
    out.extend_from_slice(&from.to_le_bytes());
    out
}

/// Decode a SUBSCRIBE request.
pub fn dec_subscribe(buf: &[u8]) -> Option<(u32, u64)> {
    if buf.len() != 12 {
        return None;
    }
    Some((le_u32(buf, 0), le_u64(buf, 4)))
}

/// Encode a HISTORY request: `room u32 | from u64 | max u32`.
pub fn enc_history(room: u32, from: u64, max: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&room.to_le_bytes());
    out.extend_from_slice(&from.to_le_bytes());
    out.extend_from_slice(&max.to_le_bytes());
    out
}

/// Decode a HISTORY request.
pub fn dec_history(buf: &[u8]) -> Option<(u32, u64, u32)> {
    if buf.len() != 16 {
        return None;
    }
    Some((le_u32(buf, 0), le_u64(buf, 4), le_u32(buf, 12)))
}

/// Encode an ACK request: `room u32 | bytes u32` of returned credit.
pub fn enc_ack(room: u32, bytes: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    out.extend_from_slice(&room.to_le_bytes());
    out.extend_from_slice(&bytes.to_le_bytes());
    out
}

/// Decode an ACK request.
pub fn dec_ack(buf: &[u8]) -> Option<(u32, u32)> {
    if buf.len() != 8 {
        return None;
    }
    Some((le_u32(buf, 0), le_u32(buf, 4)))
}

/// Encode a sequence-number response (PUBLISH / SUBSCRIBE / ACK).
pub fn enc_seq(seq: u64) -> Vec<u8> {
    seq.to_le_bytes().to_vec()
}

/// Decode a sequence-number response.
pub fn dec_seq(buf: &[u8]) -> Option<u64> {
    if buf.len() != 8 {
        return None;
    }
    Some(le_u64(buf, 0))
}

/// Encode a HISTORY response: `first_avail u64 | count u32 |
/// [seq u64 | len u32 | bytes]*`.
pub fn enc_history_resp(first_avail: u64, items: &[(u64, &[u8])]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + items.iter().map(|(_, d)| 12 + d.len()).sum::<usize>());
    out.extend_from_slice(&first_avail.to_le_bytes());
    out.extend_from_slice(&(items.len() as u32).to_le_bytes());
    for (seq, data) in items {
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(&(data.len() as u32).to_le_bytes());
        out.extend_from_slice(data);
    }
    out
}

/// Replayed `(seq, data)` entries from a HISTORY response.
pub type HistoryItems = Vec<(u64, Vec<u8>)>;

/// Decode a HISTORY response into `(first_avail, [(seq, data)])`.
pub fn dec_history_resp(buf: &[u8]) -> Option<(u64, HistoryItems)> {
    if buf.len() < 12 {
        return None;
    }
    let first_avail = le_u64(buf, 0);
    let count = le_u32(buf, 8) as usize;
    let mut items = Vec::with_capacity(count);
    let mut off = 12usize;
    for _ in 0..count {
        if buf.len() < off + 12 {
            return None;
        }
        let seq = le_u64(buf, off);
        let len = le_u32(buf, off + 8) as usize;
        off += 12;
        if buf.len() < off + len {
            return None;
        }
        items.push((seq, buf[off..off + len].to_vec()));
        off += len;
    }
    if off != buf.len() {
        return None;
    }
    Some((first_avail, items))
}

fn le_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

fn le_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let wire = enc_event(7, FLAG_EOF, b"hello");
        let (room, flags, data) = dec_event(&wire).unwrap();
        assert_eq!((room, flags, data), (7, FLAG_EOF, &b"hello"[..]));
        assert_eq!(
            dec_subscribe(&enc_subscribe(3, u64::MAX)),
            Some((3, u64::MAX))
        );
        assert_eq!(dec_history(&enc_history(3, 42, 16)), Some((3, 42, 16)));
        assert_eq!(dec_ack(&enc_ack(9, 4096)), Some((9, 4096)));
        assert_eq!(dec_seq(&enc_seq(1 << 40)), Some(1 << 40));
        let items: Vec<(u64, &[u8])> = vec![(5, b"aa"), (6, b"bbb")];
        let (first, got) = dec_history_resp(&enc_history_resp(5, &items)).unwrap();
        assert_eq!(first, 5);
        assert_eq!(got, vec![(5, b"aa".to_vec()), (6, b"bbb".to_vec())]);
    }

    #[test]
    fn rejects_malformed() {
        assert!(dec_event(&[1, 2]).is_none());
        assert!(dec_subscribe(&[0; 11]).is_none());
        assert!(dec_history(&[0; 15]).is_none());
        assert!(dec_ack(&[0; 9]).is_none());
        assert!(dec_seq(&[0; 7]).is_none());
        let mut resp = enc_history_resp(0, &[(0, b"xy")]);
        resp.pop();
        assert!(dec_history_resp(&resp).is_none());
    }
}
