//! Property tests on the room model: arbitrary interleavings of
//! publish / subscribe / credit / unsubscribe (the "loss" of a subscriber
//! mid-stream) must preserve the two load-bearing invariants:
//!
//! 1. **Gap-free prefix** — every subscriber observes a contiguous,
//!    strictly increasing sequence run starting at its granted start; a
//!    subscriber the room cannot keep contiguous is shed with a notice,
//!    never handed a gap.
//! 2. **Fan-out accounting** — after every step,
//!    `fanout_sent + fanout_throttled + fanout_shed == Σ subscribers
//!    present at each publish` (and sheds remove exactly the shed
//!    subscriber).

use std::collections::HashMap;

use proptest::prelude::*;

use suca_pubsub::{Delivery, DeliveryKind, Room, RoomCfg};

/// One generated operation against the room.
#[derive(Clone, Debug)]
enum Op {
    /// Publish an event of the given body size.
    Publish(usize),
    /// (Re-)subscribe key `k`, from tail (`true`) or from sequence 0.
    Subscribe(u8, bool),
    /// Return credit to key `k`.
    Credit(u8, u16),
    /// Drop key `k` (a lost client) — its stream just ends.
    Unsubscribe(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Publish is weighted 3/6 so generated histories actually stress the
    // fan-out paths; the remaining selectors split evenly.
    (0u8..6, 0u8..5, 1usize..96, 0u16..512, any::<bool>()).prop_map(|(sel, k, len, bytes, tail)| {
        match sel {
            0..=2 => Op::Publish(len),
            3 => Op::Subscribe(k, tail),
            4 => Op::Credit(k, bytes),
            _ => Op::Unsubscribe(k),
        }
    })
}

/// Per-subscriber observation stream: the next sequence this incarnation
/// must receive, or `None` once shed.
struct Observer {
    next: u64,
    shed: bool,
}

fn observe(observers: &mut HashMap<u8, Observer>, deliveries: &[Delivery]) {
    for d in deliveries {
        let key = d.sub as u8;
        let obs = observers.get_mut(&key).expect("delivery to unknown sub");
        match d.kind {
            DeliveryKind::Fresh | DeliveryKind::Catchup => {
                assert!(!obs.shed, "delivery after shed notice");
                assert_eq!(
                    d.seq, obs.next,
                    "gap: subscriber {key} expected {} got {}",
                    obs.next, d.seq
                );
                obs.next += 1;
            }
            DeliveryKind::Shed | DeliveryKind::Evicted => {
                assert!(!obs.shed, "double shed notice");
                obs.shed = true;
            }
        }
    }
}

proptest! {
    #[test]
    fn interleavings_stay_gap_free_and_balanced(
        retention in 1usize..32,
        max_lag in 1u64..16,
        init_window in 0u64..256,
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let mut room = Room::new(RoomCfg { retention, max_lag, init_window });
        let mut observers: HashMap<u8, Observer> = HashMap::new();
        for op in ops {
            match op {
                Op::Publish(len) => {
                    let (_, out) = room.publish(&vec![0xAB; len]);
                    observe(&mut observers, &out.deliveries);
                }
                Op::Subscribe(k, tail) => {
                    let from = if tail { u64::MAX } else { 0 };
                    let (start, replay) = room.subscribe(u64::from(k), from);
                    // A re-subscribe replaces the old incarnation; the new
                    // stream starts fresh at `start`.
                    observers.insert(k, Observer { next: start, shed: false });
                    observe(&mut observers, &replay);
                }
                Op::Credit(k, bytes) => {
                    let replay = room.credit(u64::from(k), u64::from(bytes));
                    observe(&mut observers, &replay);
                }
                Op::Unsubscribe(k) => {
                    room.unsubscribe(u64::from(k));
                    observers.remove(&k);
                }
            }
            let s = room.stats();
            prop_assert!(
                s.balanced(),
                "fan-out identity broken: sent {} + throttled {} + shed {} != expected {}",
                s.fanout_sent, s.fanout_throttled, s.fanout_shed, s.expected_fanout
            );
        }
    }
}
