//! OS cost model.
//!
//! The semi-user-level argument is quantitative: one kernel trap on the send
//! path costs ~4.17 µs extra (22 % of a 0-byte one-way latency) and buys
//! portability + protection; kernel-level networking pays traps *and*
//! interrupts on both sides. These constants calibrate an AIX 4.3.3 kernel
//! on a 375 MHz Power3-II; `scaled_cpu` supports the paper's "a faster CPU
//! will reduce these overheads" ablation.

use suca_sim::SimDuration;

/// Per-operation kernel costs.
#[derive(Clone, Debug)]
pub struct OsCostModel {
    /// User→kernel mode switch (syscall entry, register save, dispatch).
    pub trap_enter: SimDuration,
    /// Kernel→user return.
    pub trap_exit: SimDuration,
    /// Per-request security validation in a kernel module (PID, pointers,
    /// bounds — the paper's §4.3 checks).
    pub security_check: SimDuration,
    /// Pin-down table hit: hash lookup in kernel memory.
    pub pin_lookup_hit: SimDuration,
    /// Pin-down table miss: translate via the process page table and pin
    /// (per page).
    pub pin_miss_per_page: SimDuration,
    /// Hardware interrupt entry + handler dispatch.
    pub interrupt_entry: SimDuration,
    /// Interrupt handler body for a network RX (buffer demux, queue insert).
    pub interrupt_service: SimDuration,
    /// Context switch / process wakeup from a blocked syscall.
    pub context_switch: SimDuration,
    /// One user↔kernel data copy, per byte cost expressed as bandwidth.
    pub copy_bytes_per_sec: u64,
}

impl OsCostModel {
    /// AIX 4.3.3 on 375 MHz Power3-II (the DAWNING-3000 compute node).
    ///
    /// Calibration: the BCL send path (Fig. 5) spends 7.04 µs total of which
    /// PIO descriptor fill is > half (~3.8 µs for a 16-word descriptor);
    /// the remainder is library entry + trap + checks + translation,
    /// which these constants sum to.
    pub fn aix_power3() -> Self {
        OsCostModel {
            trap_enter: SimDuration::from_us_f64(1.10),
            trap_exit: SimDuration::from_us_f64(1.07),
            security_check: SimDuration::from_us_f64(0.70),
            pin_lookup_hit: SimDuration::from_us_f64(0.45),
            pin_miss_per_page: SimDuration::from_us_f64(8.0),
            interrupt_entry: SimDuration::from_us_f64(3.5),
            interrupt_service: SimDuration::from_us_f64(4.0),
            context_switch: SimDuration::from_us_f64(5.0),
            copy_bytes_per_sec: 350_000_000,
        }
    }

    /// Same kernel on a CPU `factor`× faster (factor > 1 ⇒ cheaper traps).
    /// Memory-bandwidth-bound costs (copies) are left unscaled.
    pub fn scaled_cpu(&self, factor: f64) -> Self {
        assert!(factor > 0.0);
        let s = |d: SimDuration| SimDuration::from_us_f64(d.as_us() / factor);
        OsCostModel {
            trap_enter: s(self.trap_enter),
            trap_exit: s(self.trap_exit),
            security_check: s(self.security_check),
            pin_lookup_hit: s(self.pin_lookup_hit),
            pin_miss_per_page: s(self.pin_miss_per_page),
            interrupt_entry: s(self.interrupt_entry),
            interrupt_service: s(self.interrupt_service),
            context_switch: s(self.context_switch),
            copy_bytes_per_sec: self.copy_bytes_per_sec,
        }
    }

    /// Round-trip trap cost (enter + exit).
    pub fn trap_roundtrip(&self) -> SimDuration {
        self.trap_enter + self.trap_exit
    }
}

/// What the host operating system supports. The paper's portability claim:
/// user-level architectures need `mmap` of device memory, which IBM AIX
/// does not provide — so a user-level protocol *cannot exist* there, while
/// BCL can.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OsPersonality {
    /// Short OS name.
    pub name: &'static str,
    /// Whether device memory can be mapped into user space (`mmap` of NIC
    /// registers/SRAM). Required by user-level protocols (GM, BIP, U-Net).
    pub supports_device_mmap: bool,
}

impl OsPersonality {
    /// IBM AIX 4.3.3 — no usable device mmap (the paper's §1 motivation).
    pub const AIX: OsPersonality = OsPersonality {
        name: "AIX",
        supports_device_mmap: false,
    };
    /// Linux — device mmap available.
    pub const LINUX: OsPersonality = OsPersonality {
        name: "Linux",
        supports_device_mmap: true,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_roundtrip_sums() {
        let m = OsCostModel::aix_power3();
        assert_eq!(m.trap_roundtrip(), m.trap_enter + m.trap_exit);
        assert!(m.trap_roundtrip().as_us() < 2.5, "traps are ~2 us");
    }

    #[test]
    fn scaling_halves_cpu_costs_but_not_copies() {
        let m = OsCostModel::aix_power3();
        let f = m.scaled_cpu(2.0);
        assert!((f.trap_enter.as_us() - m.trap_enter.as_us() / 2.0).abs() < 1e-6);
        assert_eq!(f.copy_bytes_per_sec, m.copy_bytes_per_sec);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the OS contract
    fn personalities() {
        assert!(!OsPersonality::AIX.supports_device_mmap);
        assert!(OsPersonality::LINUX.supports_device_mmap);
    }
}
