//! SMP CPU accounting.
//!
//! DAWNING-3000 nodes are 4-way SMPs. Most experiments run one communicating
//! process per node, but the intra-node path and the oversubscription
//! ablation need CPU slots to contend for: a [`CpuSet`] is a counting
//! resource actors hold while "computing".

use suca_sim::{ActorCtx, Semaphore, Sim, SimDuration};

/// The CPUs of one SMP node.
#[derive(Clone)]
pub struct CpuSet {
    cpus: Semaphore,
    n: u32,
}

impl CpuSet {
    /// A node with `n` CPUs.
    pub fn new(sim: &Sim, n: u32) -> Self {
        assert!(n > 0);
        CpuSet {
            cpus: Semaphore::new(sim, n as u64),
            n,
        }
    }

    /// Number of CPUs.
    pub fn num_cpus(&self) -> u32 {
        self.n
    }

    /// CPUs currently idle.
    pub fn idle(&self) -> u64 {
        self.cpus.available()
    }

    /// Run `f` while holding a CPU; blocks until one is free. Models a
    /// runnable process being scheduled.
    pub fn run<R>(&self, ctx: &mut ActorCtx, f: impl FnOnce(&mut ActorCtx) -> R) -> R {
        self.cpus.acquire(ctx);
        let r = f(ctx);
        self.cpus.release();
        r
    }

    /// Convenience: occupy a CPU for `d` of pure compute.
    pub fn compute(&self, ctx: &mut ActorCtx, d: SimDuration) {
        self.run(ctx, |ctx| ctx.sleep(d));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suca_sim::{RunOutcome, Sim};

    #[test]
    fn four_way_smp_runs_four_in_parallel_fifth_waits() {
        let sim = Sim::new(1);
        let cpus = CpuSet::new(&sim, 4);
        for i in 0..5 {
            let c = cpus.clone();
            sim.spawn(format!("p{i}"), move |ctx| {
                c.compute(ctx, SimDuration::from_us(100));
            });
        }
        assert_eq!(sim.run(), RunOutcome::Completed);
        // 5 jobs of 100 us on 4 CPUs: makespan 200 us.
        assert_eq!(sim.now().as_us(), 200.0);
        assert_eq!(cpus.idle(), 4);
    }

    #[test]
    fn uncontended_cpu_adds_no_latency() {
        let sim = Sim::new(1);
        let cpus = CpuSet::new(&sim, 4);
        let c = cpus.clone();
        sim.spawn("solo", move |ctx| {
            c.compute(ctx, SimDuration::from_us(10));
            assert_eq!(ctx.now().as_us(), 10.0);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }
}
