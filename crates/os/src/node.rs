//! Per-node operating-system instance.
//!
//! A [`NodeOs`] owns the node's physical memory, creates processes (PID +
//! address space), provides the **trap** primitive that charges kernel entry/
//! exit costs and counts critical-path traps, and raises **interrupts** for
//! the kernel-level baseline. BCL's kernel module is registered here and
//! reached via `ioctl`, exactly mirroring the paper's structure (user library
//! → ioctl subcommands → kernel module).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use suca_mem::{AddressSpace, Asid, PhysMemory};
use suca_sim::{ActorCtx, Counter, Sim, SimDuration};

use crate::costs::{OsCostModel, OsPersonality};

/// Process identifier, unique per node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pid(pub u32);

/// Physical node identifier in the cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// A user process: PID plus its private address space.
#[derive(Clone)]
pub struct OsProcess {
    /// Process id on its node.
    pub pid: Pid,
    /// Node the process runs on.
    pub node: NodeId,
    /// The process's virtual address space.
    pub space: AddressSpace,
}

struct NodeOsInner {
    next_pid: u32,
    live: HashMap<Pid, Asid>,
}

/// One node's OS.
pub struct NodeOs {
    sim: Sim,
    /// This node's id.
    pub node_id: NodeId,
    /// OS flavor (AIX on DAWNING compute nodes).
    pub personality: OsPersonality,
    /// Kernel cost model.
    pub costs: OsCostModel,
    mem: PhysMemory,
    inner: Mutex<NodeOsInner>,
    // Typed handles for the Table 1 counters: cluster-wide and per-node.
    traps: Counter,
    traps_node: Counter,
    interrupts: Counter,
    interrupts_node: Counter,
    // Interned once so per-trap span recording never allocates.
    track_tx: &'static str,
}

impl NodeOs {
    /// Boot an OS on a node.
    pub fn new(
        sim: &Sim,
        node_id: NodeId,
        mem: PhysMemory,
        personality: OsPersonality,
        costs: OsCostModel,
    ) -> Arc<NodeOs> {
        let metrics = sim.metrics();
        Arc::new(NodeOs {
            sim: sim.clone(),
            node_id,
            personality,
            costs,
            mem,
            inner: Mutex::new(NodeOsInner {
                next_pid: 1,
                live: HashMap::new(),
            }),
            traps: metrics.counter("os.traps"),
            traps_node: metrics.counter(&format!("os.traps.n{}", node_id.0)),
            interrupts: metrics.counter("os.interrupts"),
            interrupts_node: metrics.counter(&format!("os.interrupts.n{}", node_id.0)),
            track_tx: suca_sim::intern(&format!("n{}/tx", node_id.0)),
        })
    }

    /// The node's physical memory.
    pub fn memory(&self) -> &PhysMemory {
        &self.mem
    }

    /// The simulation this OS runs in.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Fork a new process with a fresh address space.
    pub fn create_process(&self) -> OsProcess {
        let mut inner = self.inner.lock();
        let pid = Pid(inner.next_pid);
        inner.next_pid += 1;
        // ASIDs are globally unique per node: pid doubles as asid seed.
        let asid = Asid(self.node_id.0 << 16 | pid.0);
        inner.live.insert(pid, asid);
        OsProcess {
            pid,
            node: self.node_id,
            space: AddressSpace::new(asid, self.mem.clone()),
        }
    }

    /// True if `pid` is a live process on this node (used by kernel-module
    /// security checks).
    pub fn is_live(&self, pid: Pid) -> bool {
        self.inner.lock().live.contains_key(&pid)
    }

    /// Terminate a process (its ASID becomes invalid for checks).
    pub fn exit_process(&self, pid: Pid) {
        self.inner.lock().live.remove(&pid);
    }

    /// Execute `f` in kernel mode from the calling actor: charges trap entry
    /// before and trap exit after, and counts one critical-path trap.
    ///
    /// Kernel code inside `f` charges its own additional costs (checks,
    /// translation, PIO) via `ctx.sleep`.
    pub fn trap<R>(&self, ctx: &mut ActorCtx, f: impl FnOnce(&mut ActorCtx) -> R) -> R {
        self.traps.inc();
        self.traps_node.inc();
        let track = self.track_tx;
        let start = ctx.now();
        self.sim.trace_span(
            track,
            "kernel: trap enter",
            start,
            start + self.costs.trap_enter,
        );
        ctx.sleep(self.costs.trap_enter);
        let r = f(ctx);
        let start = ctx.now();
        self.sim.trace_span(
            track,
            "kernel: trap exit",
            start,
            start + self.costs.trap_exit,
        );
        ctx.sleep(self.costs.trap_exit);
        r
    }

    /// Raise a hardware interrupt: after entry + service cost, `handler`
    /// runs as an event. Counts one critical-path interrupt. Used by the
    /// kernel-level (TCP-like) baseline — BCL's whole point is to have zero
    /// of these.
    pub fn interrupt(&self, sim: &Sim, handler: impl FnOnce(&Sim) + Send + 'static) {
        self.interrupts.inc();
        self.interrupts_node.inc();
        let cost = self.costs.interrupt_entry + self.costs.interrupt_service;
        sim.schedule_in(cost, handler);
    }

    /// Charge the cost of one user↔kernel copy of `len` bytes to the
    /// calling actor.
    pub fn copy_cost(&self, len: u64) -> SimDuration {
        if len == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::for_bytes(len, self.costs.copy_bytes_per_sec)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suca_sim::RunOutcome;

    fn os(sim: &Sim) -> Arc<NodeOs> {
        NodeOs::new(
            sim,
            NodeId(0),
            PhysMemory::new(1 << 22),
            OsPersonality::AIX,
            OsCostModel::aix_power3(),
        )
    }

    #[test]
    fn processes_get_unique_pids_and_isolated_spaces() {
        let sim = Sim::new(1);
        let os = os(&sim);
        let p1 = os.create_process();
        let p2 = os.create_process();
        assert_ne!(p1.pid, p2.pid);
        assert!(os.is_live(p1.pid));
        let a = p1.space.alloc(64).unwrap();
        p1.space.write(a, b"mine").unwrap();
        assert!(p2.space.read_vec(a, 4).is_err(), "spaces must be isolated");
        os.exit_process(p1.pid);
        assert!(!os.is_live(p1.pid));
    }

    #[test]
    fn trap_charges_time_and_counts() {
        let sim = Sim::new(1);
        let o = os(&sim);
        let o2 = o.clone();
        sim.spawn("p", move |ctx| {
            let r = o2.trap(ctx, |_| 42);
            assert_eq!(r, 42);
            let expect = o2.costs.trap_roundtrip();
            assert_eq!(ctx.now().since(suca_sim::SimTime::ZERO), expect);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.get_count("os.traps"), 1);
        assert_eq!(sim.get_count("os.traps.n0"), 1);
    }

    #[test]
    fn interrupt_costs_and_counts() {
        let sim = Sim::new(1);
        let o = os(&sim);
        let o2 = o.clone();
        let fired = Arc::new(Mutex::new(0u64));
        let f2 = fired.clone();
        sim.schedule_in(SimDuration::from_us(1), move |s| {
            o2.interrupt(s, move |s2| *f2.lock() = s2.now().as_ns());
        });
        sim.run();
        let cost = o.costs.interrupt_entry + o.costs.interrupt_service;
        assert_eq!(*fired.lock(), 1_000 + cost.as_ns());
        assert_eq!(sim.get_count("os.interrupts"), 1);
    }

    #[test]
    fn copy_cost_scales() {
        let sim = Sim::new(1);
        let o = os(&sim);
        assert_eq!(o.copy_cost(0), SimDuration::ZERO);
        assert!(o.copy_cost(1 << 20) > o.copy_cost(1 << 10));
    }
}
