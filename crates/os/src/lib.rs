//! # suca-os — host operating-system model
//!
//! Traps with entry/exit costs, interrupts, process/address-space management
//! and SMP CPU slots, calibrated for AIX 4.3.3 on 375 MHz Power3-II. The
//! counters `os.traps` / `os.interrupts` feed the paper's Table 1
//! (architecture comparison by critical-path privileged operations).

#![warn(missing_docs)]

pub mod costs;
pub mod node;
pub mod smp;

pub use costs::{OsCostModel, OsPersonality};
pub use node::{NodeId, NodeOs, OsProcess, Pid};
pub use smp::CpuSet;
