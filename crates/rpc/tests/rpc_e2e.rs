//! End-to-end RPC protocol tests over a real two-node BCL cluster:
//! request/response matching, out-of-order completion, admission-control
//! shedding, silent-discard timeouts, and RMA-delivered large responses.

use std::sync::{Arc, Mutex};

use suca_bcl::ProcAddr;
use suca_cluster::{Cluster, ClusterSpec, SimBarrier};
use suca_rpc::{RpcClient, RpcClientConfig, RpcServer, RpcServerConfig, RpcStatus};
use suca_sim::mtrace::{check_completeness, stage, ChainPolicy};
use suca_sim::{ActorCtx, RunOutcome, SimDuration};

/// Spawn a server on node 1 (serving until idle with `handler`) and a
/// client body on node 0, barrier-synced, and run to completion.
///
/// The client (arena bind = pinning megabytes, ~ms of virtual time) is
/// constructed *before* the barrier so the server's idle clock only
/// starts once the client is ready to issue.
fn rpc_pair(
    server_cfg: RpcServerConfig,
    client_cfg: RpcClientConfig,
    handler: impl FnMut(&mut ActorCtx, u8, &[u8]) -> Vec<u8> + Send + 'static,
    client: impl FnOnce(&mut ActorCtx, &mut RpcClient, ProcAddr) + Send + 'static,
) -> Cluster {
    let cluster = ClusterSpec::dawning3000(2).with_seed(42).build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr: Arc<Mutex<Option<ProcAddr>>> = Arc::new(Mutex::new(None));
    let (b2, a2) = (barrier.clone(), addr.clone());
    let mut handler = handler;
    cluster.spawn_process(1, "server", move |ctx, env| {
        let port = env.open_port(ctx);
        *a2.lock().unwrap() = Some(port.addr());
        let mut srv = RpcServer::new(ctx, port, server_cfg).expect("server up");
        b2.wait(ctx);
        srv.serve_until_idle(ctx, &mut handler);
    });
    cluster.spawn_process(0, "client", move |ctx, env| {
        let port = env.open_port(ctx);
        let mut cli = RpcClient::new(ctx, port, client_cfg).expect("client up");
        barrier.wait(ctx);
        let dst = addr.lock().unwrap().expect("server ready");
        client(ctx, &mut cli, dst);
    });
    assert_eq!(sim.run(), RunOutcome::Completed, "rpc workload hung");
    cluster
}

fn echo_upper(_ctx: &mut ActorCtx, op: u8, req: &[u8]) -> Vec<u8> {
    let mut out = req.to_vec();
    out.push(op);
    out
}

#[test]
fn basic_call_roundtrips_and_chains_close() {
    let cluster = rpc_pair(
        RpcServerConfig::default(),
        RpcClientConfig::default(),
        echo_upper,
        |ctx, cli, dst| {
            let c = cli.call(ctx, dst, 7, b"hello").expect("call");
            assert_eq!(c.status, RpcStatus::Ok);
            assert_eq!(c.attempts, 1);
            assert_eq!(c.payload, b"hello\x07");
            cli.quiesce(ctx, SimDuration::from_us(200));
        },
    );
    assert_eq!(cluster.sim.get_count("rpc.cli_completed"), 1);
    assert_eq!(cluster.sim.get_count("rpc.srv_served"), 1);
    assert_eq!(cluster.sim.get_count("rpc.srv_sheds"), 0);
    let events = cluster.trace_events();
    let report = check_completeness(&events, &ChainPolicy::bcl());
    assert!(report.is_closed(), "violations: {:?}", report.violations);
    // The request chain carries both service-layer spans.
    for s in [stage::RPC_CALL, stage::RPC_SERVE] {
        assert!(
            events.iter().any(|e| e.stage.as_ref() == s),
            "missing {s} span"
        );
    }
}

#[test]
fn out_of_order_responses_match_by_request_id() {
    // One client multiplexes two servers: the first request goes to a
    // slow shard, the second to a fast one. The second response arrives
    // first and must resolve the second request id / token.
    let cluster = ClusterSpec::dawning3000(3).with_seed(42).build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 3);
    let addrs: Arc<Mutex<Vec<Option<ProcAddr>>>> = Arc::new(Mutex::new(vec![None, None]));
    for (slot, delay_us) in [(0usize, 400u64), (1, 0)] {
        let (b, a) = (barrier.clone(), addrs.clone());
        cluster.spawn_process(1 + slot as u32, "server", move |ctx, env| {
            let port = env.open_port(ctx);
            a.lock().unwrap()[slot] = Some(port.addr());
            let mut srv = RpcServer::new(ctx, port, RpcServerConfig::default()).expect("server up");
            b.wait(ctx);
            srv.serve_until_idle(ctx, &mut |ctx: &mut ActorCtx, op: u8, req: &[u8]| {
                ctx.sleep(SimDuration::from_us(delay_us));
                let mut out = req.to_vec();
                out.push(op);
                out
            });
        });
    }
    cluster.spawn_process(0, "client", move |ctx, env| {
        let port = env.open_port(ctx);
        let mut cli = RpcClient::new(ctx, port, RpcClientConfig::default()).expect("client up");
        barrier.wait(ctx);
        let dsts: Vec<ProcAddr> = addrs
            .lock()
            .unwrap()
            .iter()
            .map(|a| a.expect("server ready"))
            .collect();
        cli.issue(ctx, dsts[0], 0, b"slow", 100)
            .expect("issue slow");
        cli.issue(ctx, dsts[1], 1, b"fast", 200)
            .expect("issue fast");
        let mut done = Vec::new();
        while done.len() < 2 {
            for c in cli.pump(ctx, SimDuration::from_us(500)) {
                assert_eq!(c.status, RpcStatus::Ok);
                done.push((c.token, c.payload.clone()));
            }
        }
        assert_eq!(done[0].0, 200, "fast shard's op must complete first");
        assert_eq!(done[0].1, b"fast\x01");
        assert_eq!(done[1].0, 100);
        assert_eq!(done[1].1, b"slow\x00");
        cli.quiesce(ctx, SimDuration::from_us(200));
    });
    assert_eq!(sim.run(), RunOutcome::Completed, "rpc workload hung");
    assert_eq!(cluster.sim.get_count("rpc.cli_completed"), 2);
}

#[test]
fn zero_capacity_queue_sheds_until_retries_exhaust() {
    let cfg = RpcServerConfig {
        queue_cap: 0,
        idle_timeout: SimDuration::from_ms(5),
        ..RpcServerConfig::default()
    };
    let ccfg = RpcClientConfig {
        timeout: SimDuration::from_ms(2),
        max_attempts: 3,
        backoff: SimDuration::from_us(100),
        ..RpcClientConfig::default()
    };
    let cluster = rpc_pair(cfg, ccfg, echo_upper, |ctx, cli, dst| {
        let c = cli.call(ctx, dst, 0, b"nope").expect("call");
        assert_eq!(c.status, RpcStatus::Shed);
        assert_eq!(c.attempts, 3, "shed only after exhausting retries");
        assert!(c.payload.is_empty());
        cli.quiesce(ctx, SimDuration::from_us(200));
    });
    assert_eq!(cluster.sim.get_count("rpc.srv_sheds"), 3);
    assert_eq!(cluster.sim.get_count("rpc.cli_shed"), 1);
    assert_eq!(cluster.sim.get_count("rpc.cli_retries"), 2);
    assert_eq!(cluster.sim.get_count("rpc.srv_served"), 0);
    assert!(
        cluster
            .trace_events()
            .iter()
            .any(|e| e.stage.as_ref() == stage::RPC_SHED),
        "shed must be visible on the request trace chain"
    );
}

#[test]
fn unresponsive_server_times_out_after_retries() {
    // The "server" opens a port but never polls: requests land in its
    // system pool and no response ever comes — the deadline is the only
    // thing that resolves the request.
    let cluster = ClusterSpec::dawning3000(2).with_seed(43).build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr: Arc<Mutex<Option<ProcAddr>>> = Arc::new(Mutex::new(None));
    let (b2, a2) = (barrier.clone(), addr.clone());
    cluster.spawn_process(1, "mute", move |ctx, env| {
        let port = env.open_port(ctx);
        *a2.lock().unwrap() = Some(port.addr());
        b2.wait(ctx);
        // Outlive the client's retries, then drop without ever polling.
        ctx.sleep(SimDuration::from_ms(10));
    });
    cluster.spawn_process(0, "client", move |ctx, env| {
        let port = env.open_port(ctx);
        let ccfg = RpcClientConfig {
            timeout: SimDuration::from_us(500),
            max_attempts: 3,
            ..RpcClientConfig::default()
        };
        let mut cli = RpcClient::new(ctx, port, ccfg).expect("client");
        barrier.wait(ctx);
        let dst = addr.lock().unwrap().expect("mute ready");
        let c = cli.call(ctx, dst, 0, b"anyone?").expect("call");
        assert_eq!(c.status, RpcStatus::TimedOut);
        assert_eq!(c.attempts, 3);
    });
    assert_eq!(sim.run(), RunOutcome::Completed, "timeout workload hung");
    assert_eq!(cluster.sim.get_count("rpc.cli_timeout"), 1);
    assert_eq!(cluster.sim.get_count("rpc.cli_retries"), 2);
    assert!(
        cluster
            .trace_events()
            .iter()
            .any(|e| e.stage.as_ref() == stage::RPC_TIMEOUT),
        "timeout must be visible on the request trace chain"
    );
}

#[test]
fn large_response_travels_via_rma_and_verifies() {
    let big: Vec<u8> = (0..8192u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
        .collect();
    let expect = big.clone();
    let handler = move |_ctx: &mut ActorCtx, _op: u8, _req: &[u8]| big.clone();
    let cluster = rpc_pair(
        RpcServerConfig::default(),
        RpcClientConfig::default(),
        handler,
        move |ctx, cli, dst| {
            let c = cli.call(ctx, dst, 2, b"scan").expect("call");
            assert_eq!(c.status, RpcStatus::Ok);
            assert_eq!(c.payload.len(), 8192);
            assert_eq!(c.payload, expect, "RMA-delivered payload must verify");
            cli.quiesce(ctx, SimDuration::from_us(200));
        },
    );
    assert_eq!(cluster.sim.get_count("rpc.srv_rma_responses"), 1);
    assert_eq!(cluster.sim.get_count("rpc.srv_inline_responses"), 0);
    let report = check_completeness(&cluster.trace_events(), &ChainPolicy::bcl());
    assert!(report.is_closed(), "violations: {:?}", report.violations);
}
