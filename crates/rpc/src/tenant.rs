//! Tenant identity, priority classes, and per-tenant admission policy.
//!
//! The semi-user-level split makes multi-tenancy cheap: protection and
//! admission live at the service layer (one decode + table lookup per
//! arrival), while each tenant's data path stays user-level. Every RPC
//! frame carries a [`TenantId`] and a [`Priority`]; servers configured
//! with [`TenantPolicy`] rows enforce per-tenant bounded quotas and
//! dequeue high-priority work first, shedding low-priority work first
//! under overload.

use std::fmt;

/// Which workload a request belongs to. Tenant ids are small integers
/// assigned by the harness (`0` = the default single-tenant world every
/// pre-tenancy caller lives in). SLO windows fold ids ≥ 3 into one
/// bucket, mirroring the op-class convention.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u8);

impl TenantId {
    /// The implicit tenant of every caller that predates the tenancy
    /// layer: single-tenant runs are tenant 0 throughout.
    pub const DEFAULT: TenantId = TenantId(0);
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Two-level priority class. The server admits and serves `High` ahead of
/// `Low`, and under a full queue a `High` arrival evicts the newest
/// queued `Low` request (low sheds first) instead of being shed itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Latency-sensitive traffic: admitted and served first.
    High,
    /// Throughput traffic: first to shed under overload.
    Low,
}

impl Priority {
    /// Wire encoding (one byte in the frame header).
    pub fn to_wire(self) -> u8 {
        match self {
            Priority::High => 0,
            Priority::Low => 1,
        }
    }

    /// Decode; unknown values are `None` (counted by the receiver as a
    /// bad frame, never panicked on).
    pub fn from_wire(b: u8) -> Option<Priority> {
        match b {
            0 => Some(Priority::High),
            1 => Some(Priority::Low),
            _ => None,
        }
    }

    /// Report label (`high` / `low`).
    pub fn label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Low => "low",
        }
    }
}

/// One tenant's admission contract at a server. Policies are the server's
/// source of truth: the priority in the frame is advisory, the policy's
/// priority is what admission uses, so a misbehaving client cannot
/// promote itself.
#[derive(Clone, Copy, Debug)]
pub struct TenantPolicy {
    /// Tenant this row governs.
    pub tenant: TenantId,
    /// Most requests this tenant may hold queued at once; arrivals beyond
    /// it are shed (counted per tenant) regardless of total queue space.
    pub quota: usize,
    /// Priority class all of this tenant's requests are served at.
    pub priority: Priority,
}

impl TenantPolicy {
    /// Convenience constructor.
    pub fn new(tenant: u8, quota: usize, priority: Priority) -> Self {
        TenantPolicy {
            tenant: TenantId(tenant),
            quota: quota.max(1),
            priority,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_wire_roundtrip() {
        for p in [Priority::High, Priority::Low] {
            assert_eq!(Priority::from_wire(p.to_wire()), Some(p));
        }
        assert_eq!(Priority::from_wire(7), None);
    }

    #[test]
    fn tenant_display_and_policy_floor() {
        assert_eq!(TenantId(3).to_string(), "t3");
        assert_eq!(TenantPolicy::new(1, 0, Priority::Low).quota, 1);
    }
}
