//! RPC client: request-id matching, deadlines, retry/backoff, and a
//! response arena for RMA-delivered payloads.
//!
//! One client multiplexes any number of logical callers over a single
//! [`BclPort`] — the workload layer models thousands of simulated users
//! with a few dozen client actors, each driving one of these.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use suca_bcl::{BclError, BclPort, ChannelId, ProcAddr, RecvEvent};
use suca_mem::VirtAddr;
use suca_sim::mtrace::stage;
use suca_sim::{ActorCtx, Counter, Gauge, SimDuration, SimTime, TraceEvent, TraceId, TraceLayer};

use crate::frame::{RpcFrame, RpcKind, ARENA_CHANNEL};
use crate::tenant::{Priority, TenantId};

/// Client policy knobs.
#[derive(Clone, Debug)]
pub struct RpcClientConfig {
    /// Per-attempt deadline. BCL's system channel silently discards under
    /// pool exhaustion, so this is the only way a lost request resolves.
    pub timeout: SimDuration,
    /// Total attempts per logical request (first send + retries).
    pub max_attempts: u32,
    /// Base backoff after a shed reply; attempt `k` waits `k * backoff`.
    pub backoff: SimDuration,
    /// Response-arena slots (= maximum in-flight requests).
    pub arena_slots: u32,
    /// Bytes per arena slot (= largest RMA response).
    pub slot_bytes: u64,
    /// Tenant stamped on every request this client issues.
    pub tenant: TenantId,
    /// Advisory priority stamped on requests (servers with tenant
    /// policies override it from the policy table).
    pub priority: Priority,
}

impl Default for RpcClientConfig {
    fn default() -> Self {
        RpcClientConfig {
            timeout: SimDuration::from_us(2_000),
            max_attempts: 3,
            backoff: SimDuration::from_us(100),
            arena_slots: 64,
            slot_bytes: 16 * 1024,
            tenant: TenantId::DEFAULT,
            priority: Priority::High,
        }
    }
}

/// One server-initiated event (pub-sub fan-out) received by this client.
#[derive(Clone, Debug)]
pub struct PushEvent {
    /// Tenant the event stream belongs to.
    pub tenant: TenantId,
    /// Application class of the stream.
    pub op_class: u8,
    /// 64-bit event sequence number.
    pub seq: u64,
    /// Event payload.
    pub payload: Vec<u8>,
}

/// Final outcome of one logical request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RpcStatus {
    /// Response received.
    Ok,
    /// Server shed it (admission control) on every attempt.
    Shed,
    /// No response within the deadline on the final attempt.
    TimedOut,
    /// The kernel declared every path to the destination dead (chaos /
    /// hardware failure). Terminal immediately — retrying the same node
    /// cannot succeed; callers should re-home to a replica.
    DeadDestination,
}

/// A resolved request, as returned by [`RpcClient::advance`].
#[derive(Clone, Debug)]
pub struct RpcCompletion {
    /// Caller-chosen correlation token (e.g. a simulated-user index).
    pub token: u64,
    /// The request id this resolves.
    pub req_id: u32,
    /// Where the request was sent (re-homing key for dead destinations).
    pub dst: ProcAddr,
    /// Operation class echoed from the request.
    pub op_class: u8,
    /// How it ended.
    pub status: RpcStatus,
    /// Issue-to-resolution latency (covers all attempts).
    pub latency: SimDuration,
    /// Attempts consumed.
    pub attempts: u32,
    /// Response payload (empty for shed/timeout).
    pub payload: Vec<u8>,
}

struct Pending {
    token: u64,
    op_class: u8,
    dst: ProcAddr,
    /// Encoded request frame, kept for retries.
    wire: Vec<u8>,
    slot: u32,
    issued: SimTime,
    /// Message id of the first attempt — the trace chain RPC spans join.
    first_msg: Option<u32>,
    attempts: u32,
    deadline: SimTime,
    /// Set while waiting out a shed backoff (supersedes `deadline`).
    backoff_until: Option<SimTime>,
}

/// The client half of the service layer. See the crate docs for the
/// protocol; see [`RpcClient::issue`] / [`RpcClient::advance`] for the
/// multiplexed API and [`RpcClient::call`] for the blocking convenience.
pub struct RpcClient {
    port: BclPort,
    cfg: RpcClientConfig,
    arena: VirtAddr,
    free_slots: Vec<u32>,
    pending: HashMap<u32, Pending>,
    pushes: VecDeque<PushEvent>,
    next_req_id: u32,
    node: u32,
    inflight_probe: Arc<AtomicU64>,
    c_issued: Counter,
    c_pushes: Counter,
    c_completed: Counter,
    c_shed: Counter,
    c_timeout: Counter,
    c_retries: Counter,
    c_shed_replies: Counter,
    c_late: Counter,
    c_bad_frames: Counter,
    c_dead_dest: Counter,
    c_no_slot: Counter,
    g_inflight: Gauge,
}

impl RpcClient {
    /// Bind the response arena and register instruments. One kernel trap
    /// (the arena bind).
    pub fn new(ctx: &mut ActorCtx, port: BclPort, cfg: RpcClientConfig) -> Result<Self, BclError> {
        let arena = port.bind_open(ctx, ARENA_CHANNEL, cfg.arena_slots as u64 * cfg.slot_bytes)?;
        let addr = port.addr();
        let node = addr.node.0;
        let m = ctx.sim().metrics();
        let inflight_probe = Arc::new(AtomicU64::new(0));
        let probe = inflight_probe.clone();
        ctx.sim().timeseries().register(
            format!("n{node}.p{}.rpc.inflight", addr.port.0),
            node,
            // No declared capacity: the bound is the arena (asserted via
            // the gauge high-water), and a full arena is client-side
            // admission control, not a stalled resource.
            None,
            move |_| probe.load(Ordering::Relaxed),
        );
        Ok(RpcClient {
            free_slots: (0..cfg.arena_slots).rev().collect(),
            pending: HashMap::new(),
            pushes: VecDeque::new(),
            next_req_id: 1,
            node,
            inflight_probe,
            c_issued: m.counter("rpc.cli_issued"),
            c_pushes: m.counter("rpc.cli_pushes"),
            c_completed: m.counter("rpc.cli_completed"),
            c_shed: m.counter("rpc.cli_shed"),
            c_timeout: m.counter("rpc.cli_timeout"),
            c_retries: m.counter("rpc.cli_retries"),
            c_shed_replies: m.counter("rpc.cli_shed_replies"),
            c_late: m.counter("rpc.cli_late_responses"),
            c_bad_frames: m.counter("rpc.cli_bad_frames"),
            c_dead_dest: m.counter("rpc.cli_dead_dest"),
            c_no_slot: m.counter("rpc.cli_no_slot"),
            g_inflight: m.gauge("rpc.cli_inflight"),
            port,
            cfg,
            arena,
        })
    }

    /// This client's port address.
    pub fn addr(&self) -> ProcAddr {
        self.port.addr()
    }

    /// Tenant this client issues for.
    pub fn tenant(&self) -> TenantId {
        self.cfg.tenant
    }

    /// Drain every push event received since the last call, in arrival
    /// order. Pushes are diverted here by [`RpcClient::advance`] /
    /// [`RpcClient::pump`]; subscribers poll this after pumping.
    pub fn take_pushes(&mut self) -> Vec<PushEvent> {
        self.pushes.drain(..).collect()
    }

    /// Requests currently in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// True when an arena slot is free for another [`RpcClient::issue`].
    pub fn can_issue(&self) -> bool {
        !self.free_slots.is_empty()
    }

    /// Issue one request. `token` is an opaque correlation value returned
    /// in the completion. Returns the request id.
    ///
    /// Callers must check [`RpcClient::can_issue`] first; the arena bound
    /// is the client's own admission control.
    pub fn issue(
        &mut self,
        ctx: &mut ActorCtx,
        dst: ProcAddr,
        op_class: u8,
        payload: &[u8],
        token: u64,
    ) -> Result<u32, BclError> {
        // An exhausted arena is a caller bug (`can_issue` not checked), but
        // on a health-monitored run it must surface as a counted, reported
        // error — not a panic that kills the monitor with the patient.
        let Some(slot) = self.free_slots.pop() else {
            self.c_no_slot.inc();
            return Err(BclError::RingFull);
        };
        let req_id = self.next_req_id;
        self.next_req_id = self.next_req_id.wrapping_add(1);
        let frame = RpcFrame {
            kind: RpcKind::Request,
            op_class,
            req_id,
            arena_off: slot * self.cfg.slot_bytes as u32,
            len: payload.len() as u32,
            tenant: self.cfg.tenant,
            prio: self.cfg.priority,
        };
        let wire = frame.encode(payload);
        let issued = ctx.now();
        let msg_id = match self.send_backpressured(ctx, dst, &wire) {
            Ok(id) => id,
            Err(e) => {
                self.free_slots.push(slot);
                return Err(e);
            }
        };
        self.c_issued.inc();
        self.g_inflight.add(1);
        self.inflight_probe.fetch_add(1, Ordering::Relaxed);
        self.pending.insert(
            req_id,
            Pending {
                token,
                op_class,
                dst,
                wire,
                slot,
                issued,
                first_msg: msg_id.is_multiple_of(2).then_some(msg_id),
                attempts: 1,
                deadline: issued + self.cfg.timeout,
                backoff_until: None,
            },
        );
        Ok(req_id)
    }

    /// Earliest instant at which some pending request needs attention
    /// (attempt deadline or backoff expiry).
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.pending
            .values()
            .map(|p| p.backoff_until.unwrap_or(p.deadline))
            .min()
    }

    /// Drain completion queues and enforce deadlines without blocking.
    /// Returns every request that resolved.
    pub fn advance(&mut self, ctx: &mut ActorCtx) -> Vec<RpcCompletion> {
        let mut out = Vec::new();
        while self.port.poll_send(ctx).is_some() {}
        while let Some(ev) = self.port.poll_recv(ctx) {
            self.handle_recv(ctx, ev, &mut out);
        }
        self.expire(ctx, &mut out);
        out
    }

    /// Block for up to `max_wait` (bounded further by the earliest pending
    /// deadline) waiting for progress, then [`RpcClient::advance`].
    pub fn pump(&mut self, ctx: &mut ActorCtx, max_wait: SimDuration) -> Vec<RpcCompletion> {
        let mut wait = max_wait;
        if let Some(t) = self.next_deadline() {
            let now = ctx.now();
            wait = if t <= now {
                SimDuration::ZERO
            } else {
                wait.min(t.since(now))
            };
        }
        let mut out = Vec::new();
        if wait > SimDuration::ZERO {
            if let Some(ev) = self.port.wait_recv_timeout(ctx, wait) {
                self.handle_recv(ctx, ev, &mut out);
            }
        }
        out.extend(self.advance(ctx));
        out
    }

    /// Blocking convenience: issue and wait for this one request.
    pub fn call(
        &mut self,
        ctx: &mut ActorCtx,
        dst: ProcAddr,
        op_class: u8,
        payload: &[u8],
    ) -> Result<RpcCompletion, BclError> {
        let req_id = self.issue(ctx, dst, op_class, payload, 0)?;
        loop {
            for c in self.pump(ctx, self.cfg.timeout) {
                if c.req_id == req_id {
                    return Ok(c);
                }
            }
        }
    }

    /// After the workload ends: consume straggler responses (counted as
    /// late) until the port stays quiet for `grace`, so every BCL chain
    /// this client caused closes with a user poll.
    pub fn quiesce(&mut self, ctx: &mut ActorCtx, grace: SimDuration) {
        debug_assert!(self.pending.is_empty(), "quiesce with requests in flight");
        while let Some(ev) = self.port.wait_recv_timeout(ctx, grace) {
            let mut sink = Vec::new();
            self.handle_recv(ctx, ev, &mut sink);
        }
        while self.port.poll_send(ctx).is_some() {}
    }

    fn send_backpressured(
        &self,
        ctx: &mut ActorCtx,
        dst: ProcAddr,
        wire: &[u8],
    ) -> Result<u32, BclError> {
        loop {
            match self.port.send_bytes(ctx, dst, ChannelId::SYSTEM, wire) {
                Err(BclError::RingFull) => {
                    // Park on the send queue, bounded so a wedged ring
                    // cannot hang the caller silently forever.
                    let _ = self.port.wait_send_timeout(ctx, self.cfg.timeout);
                }
                r => return r,
            }
        }
    }

    fn handle_recv(&mut self, ctx: &mut ActorCtx, ev: RecvEvent, out: &mut Vec<RpcCompletion>) {
        let Ok(data) = self.port.recv_bytes(ctx, &ev) else {
            self.c_bad_frames.inc();
            return;
        };
        let Some((frame, inline)) = RpcFrame::decode(&data) else {
            self.c_bad_frames.inc();
            return;
        };
        if frame.kind == RpcKind::Push {
            // Unsolicited fan-out event: not correlated with any pending
            // request — queue it for `take_pushes`.
            self.c_pushes.inc();
            self.pushes.push_back(PushEvent {
                tenant: frame.tenant,
                op_class: frame.op_class,
                seq: frame.push_seq(),
                payload: inline[..frame.len as usize].to_vec(),
            });
            return;
        }
        if !self.pending.contains_key(&frame.req_id) {
            // Duplicate response to a retried request, or a response that
            // lost the race with our own timeout.
            self.c_late.inc();
            return;
        }
        match frame.kind {
            RpcKind::Response => {
                let payload = inline[..frame.len as usize].to_vec();
                self.complete(ctx, frame.req_id, RpcStatus::Ok, payload, out);
            }
            RpcKind::RmaResponse => {
                // Fragments of one NIC pair arrive in order, so the RMA
                // data was DMA'd into the arena before this frame's
                // completion event was written.
                let off = frame.arena_off as u64;
                let payload = self
                    .port
                    .read_buffer(VirtAddr(self.arena.0 + off), frame.len as u64)
                    .unwrap_or_default();
                self.complete(ctx, frame.req_id, RpcStatus::Ok, payload, out);
            }
            RpcKind::Shed => {
                self.c_shed_replies.inc();
                let Some(p) = self.pending.get_mut(&frame.req_id) else {
                    self.c_late.inc();
                    return;
                };
                if p.attempts >= self.cfg.max_attempts {
                    self.complete(ctx, frame.req_id, RpcStatus::Shed, Vec::new(), out);
                } else {
                    p.backoff_until = Some(ctx.now() + self.cfg.backoff * u64::from(p.attempts));
                }
            }
            RpcKind::Request | RpcKind::Push => self.c_bad_frames.inc(),
        }
    }

    /// Retry or resolve every pending request whose clock ran out.
    fn expire(&mut self, ctx: &mut ActorCtx, out: &mut Vec<RpcCompletion>) {
        let now = ctx.now();
        let due: Vec<u32> = self
            .pending
            .iter()
            .filter(|(_, p)| p.backoff_until.unwrap_or(p.deadline) <= now)
            .map(|(&id, _)| id)
            .collect();
        for req_id in due {
            let (retry, dst, wire) = {
                // A completion between collection and this pass can remove
                // the entry; skipping is correct, panicking is not.
                let Some(p) = self.pending.get(&req_id) else {
                    continue;
                };
                let timed_out = p.backoff_until.is_none();
                if timed_out && p.attempts >= self.cfg.max_attempts {
                    (false, p.dst, Vec::new())
                } else {
                    (true, p.dst, p.wire.clone())
                }
            };
            if !retry {
                self.trace_instant(ctx, req_id, stage::RPC_TIMEOUT);
                self.complete(ctx, req_id, RpcStatus::TimedOut, Vec::new(), out);
                continue;
            }
            self.c_retries.inc();
            self.trace_instant(ctx, req_id, stage::RPC_RETRY);
            // PathDead is terminal: the kernel says no path to this node
            // works, so further attempts are wasted deadline. Surface it so
            // the caller can re-home the work to a replica. Anything else is
            // retryable — the refreshed deadline resolves the request as
            // TimedOut on a later pass if the resend was also lost.
            if let Err(BclError::PathDead(_)) = self.send_backpressured(ctx, dst, &wire) {
                self.trace_instant(ctx, req_id, stage::RPC_DEAD_DEST);
                self.complete(ctx, req_id, RpcStatus::DeadDestination, Vec::new(), out);
                continue;
            }
            let now = ctx.now();
            if let Some(p) = self.pending.get_mut(&req_id) {
                p.attempts += 1;
                p.backoff_until = None;
                p.deadline = now + self.cfg.timeout;
            }
        }
    }

    fn complete(
        &mut self,
        ctx: &mut ActorCtx,
        req_id: u32,
        status: RpcStatus,
        payload: Vec<u8>,
        out: &mut Vec<RpcCompletion>,
    ) {
        let Some(p) = self.pending.remove(&req_id) else {
            return;
        };
        self.free_slots.push(p.slot);
        self.g_inflight.sub(1);
        self.inflight_probe.fetch_sub(1, Ordering::Relaxed);
        match status {
            RpcStatus::Ok => self.c_completed.inc(),
            RpcStatus::Shed => self.c_shed.inc(),
            RpcStatus::TimedOut => self.c_timeout.inc(),
            RpcStatus::DeadDestination => self.c_dead_dest.inc(),
        }
        let now = ctx.now();
        // Feed the online SLO windows (no-op unless health is armed).
        ctx.sim().health().observe_rpc(
            self.cfg.tenant.0,
            p.op_class,
            status == RpcStatus::Ok,
            now.since(p.issued).as_ns(),
            payload.len() as u64,
        );
        if let Some(msg) = p.first_msg {
            let sim = ctx.sim();
            if sim.msg_trace().enabled() {
                sim.trace_event(
                    TraceEvent::span(
                        TraceId::new(self.node, msg),
                        self.node,
                        TraceLayer::Rpc,
                        stage::RPC_CALL,
                        p.issued.as_ns(),
                        now.as_ns(),
                    )
                    .with_bytes(payload.len() as u64),
                );
            }
        }
        out.push(RpcCompletion {
            token: p.token,
            req_id,
            dst: p.dst,
            op_class: p.op_class,
            status,
            latency: now.since(p.issued),
            attempts: p.attempts,
            payload,
        });
    }

    fn trace_instant(&self, ctx: &ActorCtx, req_id: u32, stage_name: &'static str) {
        let Some(p) = self.pending.get(&req_id) else {
            return;
        };
        let Some(msg) = p.first_msg else {
            return;
        };
        let sim = ctx.sim();
        if sim.msg_trace().enabled() {
            sim.trace_event(TraceEvent::instant(
                TraceId::new(self.node, msg),
                self.node,
                TraceLayer::Rpc,
                stage_name,
                ctx.now().as_ns(),
            ));
        }
    }
}
