//! # suca-rpc — request/response service layer over BCL
//!
//! The paper positions BCL as a *substrate*: EADI-2, MPI, and PVM all ride
//! on it. This crate adds the service-oriented upper layer the ROADMAP's
//! north star ("serve heavy traffic from millions of users") needs — a
//! classic request/response protocol with the failure semantics BCL
//! actually provides:
//!
//! * **Request-id matching** ([`client::RpcClient`]) — many logical
//!   callers multiplex over one [`suca_bcl::BclPort`]; responses complete
//!   out of order and are matched by a per-port request id.
//! * **Explicit timeouts** — BCL's system channel *silently discards* a
//!   message when the receiver's buffer pool is empty (paper §2.2), so a
//!   request can vanish with a successful send completion. Every pending
//!   request carries a deadline enforced via
//!   [`suca_bcl::BclPort::wait_recv_timeout`].
//! * **Admission control** ([`server::RpcServer`]) — a bounded server-side
//!   request queue; arrivals beyond the bound are answered with a counted
//!   `Shed` reply instead of being left to wedge go-back-N behind a
//!   stalled receiver. Clients back off and retry a bounded number of
//!   times, so overload degrades into counted sheds rather than livelock.
//! * **Tenancy** ([`tenant`]) — every frame names its [`TenantId`] and
//!   [`Priority`]; servers configured with [`TenantPolicy`] rows enforce
//!   per-tenant bounded quotas and two priority classes (high admitted
//!   and served first, low shed first under overload), so three distinct
//!   workloads can share one cluster under separate SLOs.
//! * **Push events** — servers may return [`RpcPush`] fan-out events from
//!   a handler ([`RpcServer::serve_tenants_until_idle`]); clients divert
//!   them to [`RpcClient::take_pushes`] without touching the request-id
//!   matcher (the pub-sub subscriber path).
//! * **RMA responses** — replies too large for the system channel are
//!   one-sided-written into a per-request slot of the client's response
//!   arena (an open channel), then announced with a small completion
//!   frame; fragment ordering within a NIC pair guarantees the data is in
//!   host memory before the announcement's completion event.
//!
//! Every RPC joins the per-message causal trace: client and server record
//! [`suca_sim::TraceLayer::Rpc`] spans against the *request message's*
//! [`suca_sim::TraceId`], so one id stitches the application-level call to
//! every packet, retransmission, and DMA it caused.

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod server;
pub mod tenant;

pub use client::{PushEvent, RpcClient, RpcClientConfig, RpcCompletion, RpcStatus};
pub use frame::{RpcFrame, RpcKind, ARENA_CHANNEL, FRAME_BYTES};
pub use server::{RpcPush, RpcReply, RpcRequest, RpcServer, RpcServerConfig};
pub use tenant::{Priority, TenantId, TenantPolicy};
