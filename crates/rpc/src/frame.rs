//! RPC framing: a fixed 20-byte header carried inside BCL payloads.
//!
//! Requests and inline responses travel on the system channel (so they are
//! bounded by the 4 KB pool buffer); large responses are RMA-written into
//! the client's response arena and announced by an `RmaResponse` frame
//! whose header names the arena offset and length. Every frame names its
//! tenant and priority class so servers can enforce per-tenant admission
//! without a second decode. `Push` frames carry server-initiated events
//! (pub-sub fan-out): their 64-bit sequence number rides in the
//! `req_id`/`arena_off` pair, which unsolicited frames do not otherwise
//! use.

use crate::tenant::{Priority, TenantId};

/// Open-channel index every RPC client binds its response arena to. A
/// fixed convention keeps the request frame small: servers only need the
/// arena *offset*, not a channel id.
pub const ARENA_CHANNEL: u16 = 0;

/// Encoded header length.
pub const FRAME_BYTES: usize = 20;

/// Frame magic ("RC" + version 2 — version 1 was the 16-byte pre-tenancy
/// header). A decode failure is counted by the receiver, never panicked
/// on — ports are a user-facing surface.
pub const MAGIC: u16 = 0x52C2;

/// What a frame is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RpcKind {
    /// Client → server: please execute `op_class` on the inline payload.
    Request,
    /// Server → client: inline response payload follows the header.
    Response,
    /// Server → client: the response payload was RMA-written into the
    /// client's arena at `arena_off` (`len` bytes); nothing follows.
    RmaResponse,
    /// Server → client: admission control rejected the request (bounded
    /// queue full, tenant over quota, or evicted by a higher-priority
    /// arrival). No payload.
    Shed,
    /// Server → client: an unsolicited event (pub-sub fan-out). The
    /// `req_id`/`arena_off` pair carries the event's 64-bit sequence
    /// number (low/high words); the payload follows inline.
    Push,
}

impl RpcKind {
    fn to_wire(self) -> u8 {
        match self {
            RpcKind::Request => 0,
            RpcKind::Response => 1,
            RpcKind::RmaResponse => 2,
            RpcKind::Shed => 3,
            RpcKind::Push => 4,
        }
    }

    fn from_wire(b: u8) -> Option<RpcKind> {
        match b {
            0 => Some(RpcKind::Request),
            1 => Some(RpcKind::Response),
            2 => Some(RpcKind::RmaResponse),
            3 => Some(RpcKind::Shed),
            4 => Some(RpcKind::Push),
            _ => None,
        }
    }
}

/// One RPC frame header.
///
/// Layout (little-endian): `magic u16 | kind u8 | op_class u8 | req_id u32
/// | arena_off u32 | len u32 | tenant u8 | prio u8 | reserved u16`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RpcFrame {
    /// Frame type.
    pub kind: RpcKind,
    /// Application operation class (dispatched by the server handler; also
    /// the latency-histogram bucket).
    pub op_class: u8,
    /// Client-port-unique request id; responses echo it. For `Push`
    /// frames: the low 32 bits of the event sequence number.
    pub req_id: u32,
    /// Byte offset of this request's slot in the client's response arena
    /// (requests name it, responses echo it). For `Push` frames: the high
    /// 32 bits of the event sequence number.
    pub arena_off: u32,
    /// Payload length: inline bytes following the header for `Request` /
    /// `Response` / `Push`, arena bytes for `RmaResponse`, 0 for `Shed`.
    pub len: u32,
    /// Tenant the request belongs to (echoed on replies and pushes).
    pub tenant: TenantId,
    /// Advisory priority class; servers with tenant policies override it.
    pub prio: Priority,
}

impl RpcFrame {
    /// Build a `Push` frame header for event `seq` of `tenant`.
    pub fn push(tenant: TenantId, op_class: u8, seq: u64, len: u32) -> RpcFrame {
        RpcFrame {
            kind: RpcKind::Push,
            op_class,
            req_id: seq as u32,
            arena_off: (seq >> 32) as u32,
            len,
            tenant,
            prio: Priority::Low,
        }
    }

    /// The 64-bit push sequence number carried in `req_id`/`arena_off`.
    pub fn push_seq(&self) -> u64 {
        (u64::from(self.arena_off) << 32) | u64::from(self.req_id)
    }

    /// Encode the header followed by `payload` (which must match
    /// `self.len` for inline kinds).
    pub fn encode(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_BYTES + payload.len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(self.kind.to_wire());
        out.push(self.op_class);
        out.extend_from_slice(&self.req_id.to_le_bytes());
        out.extend_from_slice(&self.arena_off.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.push(self.tenant.0);
        out.push(self.prio.to_wire());
        out.extend_from_slice(&[0u8, 0u8]);
        out.extend_from_slice(payload);
        out
    }

    /// Decode a header and return it with the inline payload that follows.
    /// `None` on short buffers, bad magic, or unknown kinds/priorities.
    pub fn decode(buf: &[u8]) -> Option<(RpcFrame, &[u8])> {
        if buf.len() < FRAME_BYTES {
            return None;
        }
        if u16::from_le_bytes([buf[0], buf[1]]) != MAGIC {
            return None;
        }
        let kind = RpcKind::from_wire(buf[2])?;
        let prio = Priority::from_wire(buf[17])?;
        let frame = RpcFrame {
            kind,
            op_class: buf[3],
            req_id: u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]),
            arena_off: u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]),
            len: u32::from_le_bytes([buf[12], buf[13], buf[14], buf[15]]),
            tenant: TenantId(buf[16]),
            prio,
        };
        Some((frame, &buf[FRAME_BYTES..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for kind in [
            RpcKind::Request,
            RpcKind::Response,
            RpcKind::RmaResponse,
            RpcKind::Shed,
            RpcKind::Push,
        ] {
            let f = RpcFrame {
                kind,
                op_class: 2,
                req_id: 0xDEAD_BEEF,
                arena_off: 8192,
                len: 3,
                tenant: TenantId(3),
                prio: Priority::Low,
            };
            let wire = f.encode(b"abc");
            let (back, payload) = RpcFrame::decode(&wire).expect("decodes");
            assert_eq!(back, f);
            assert_eq!(payload, b"abc");
        }
    }

    #[test]
    fn push_seq_spans_both_words() {
        let seq = 0x1234_5678_9ABC_DEF0u64;
        let f = RpcFrame::push(TenantId(1), 0, seq, 0);
        assert_eq!(f.push_seq(), seq);
        let (back, _) = RpcFrame::decode(&f.encode(&[])).expect("decodes");
        assert_eq!(back.push_seq(), seq);
    }

    #[test]
    fn rejects_garbage() {
        assert!(RpcFrame::decode(b"short").is_none());
        let base = RpcFrame {
            kind: RpcKind::Request,
            op_class: 0,
            req_id: 1,
            arena_off: 0,
            len: 0,
            tenant: TenantId::DEFAULT,
            prio: Priority::High,
        };
        let mut wire = base.encode(b"");
        wire[0] ^= 0xFF; // bad magic
        assert!(RpcFrame::decode(&wire).is_none());
        let mut wire2 = base.encode(b"");
        wire2[2] = 9; // unknown kind
        assert!(RpcFrame::decode(&wire2).is_none());
        let mut wire3 = base.encode(b"");
        wire3[17] = 7; // unknown priority
        assert!(RpcFrame::decode(&wire3).is_none());
    }
}
