//! RPC framing: a fixed 16-byte header carried inside BCL payloads.
//!
//! Requests and inline responses travel on the system channel (so they are
//! bounded by the 4 KB pool buffer); large responses are RMA-written into
//! the client's response arena and announced by an `RmaResponse` frame
//! whose header names the arena offset and length.

/// Open-channel index every RPC client binds its response arena to. A
/// fixed convention keeps the request frame small: servers only need the
/// arena *offset*, not a channel id.
pub const ARENA_CHANNEL: u16 = 0;

/// Encoded header length.
pub const FRAME_BYTES: usize = 16;

/// Frame magic ("RC" + version 1). A decode failure is counted by the
/// receiver, never panicked on — ports are a user-facing surface.
pub const MAGIC: u16 = 0x52C1;

/// What a frame is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RpcKind {
    /// Client → server: please execute `op_class` on the inline payload.
    Request,
    /// Server → client: inline response payload follows the header.
    Response,
    /// Server → client: the response payload was RMA-written into the
    /// client's arena at `arena_off` (`len` bytes); nothing follows.
    RmaResponse,
    /// Server → client: admission control rejected the request (bounded
    /// queue full). No payload.
    Shed,
}

impl RpcKind {
    fn to_wire(self) -> u8 {
        match self {
            RpcKind::Request => 0,
            RpcKind::Response => 1,
            RpcKind::RmaResponse => 2,
            RpcKind::Shed => 3,
        }
    }

    fn from_wire(b: u8) -> Option<RpcKind> {
        match b {
            0 => Some(RpcKind::Request),
            1 => Some(RpcKind::Response),
            2 => Some(RpcKind::RmaResponse),
            3 => Some(RpcKind::Shed),
            _ => None,
        }
    }
}

/// One RPC frame header.
///
/// Layout (little-endian): `magic u16 | kind u8 | op_class u8 | req_id u32
/// | arena_off u32 | len u32`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RpcFrame {
    /// Frame type.
    pub kind: RpcKind,
    /// Application operation class (dispatched by the server handler; also
    /// the latency-histogram bucket).
    pub op_class: u8,
    /// Client-port-unique request id; responses echo it.
    pub req_id: u32,
    /// Byte offset of this request's slot in the client's response arena
    /// (requests name it, responses echo it).
    pub arena_off: u32,
    /// Payload length: inline bytes following the header for `Request` /
    /// `Response`, arena bytes for `RmaResponse`, 0 for `Shed`.
    pub len: u32,
}

impl RpcFrame {
    /// Encode the header followed by `payload` (which must match
    /// `self.len` for inline kinds).
    pub fn encode(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_BYTES + payload.len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(self.kind.to_wire());
        out.push(self.op_class);
        out.extend_from_slice(&self.req_id.to_le_bytes());
        out.extend_from_slice(&self.arena_off.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Decode a header and return it with the inline payload that follows.
    /// `None` on short buffers, bad magic, or unknown kinds.
    pub fn decode(buf: &[u8]) -> Option<(RpcFrame, &[u8])> {
        if buf.len() < FRAME_BYTES {
            return None;
        }
        if u16::from_le_bytes([buf[0], buf[1]]) != MAGIC {
            return None;
        }
        let kind = RpcKind::from_wire(buf[2])?;
        let frame = RpcFrame {
            kind,
            op_class: buf[3],
            req_id: u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]),
            arena_off: u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]),
            len: u32::from_le_bytes([buf[12], buf[13], buf[14], buf[15]]),
        };
        Some((frame, &buf[FRAME_BYTES..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for kind in [
            RpcKind::Request,
            RpcKind::Response,
            RpcKind::RmaResponse,
            RpcKind::Shed,
        ] {
            let f = RpcFrame {
                kind,
                op_class: 2,
                req_id: 0xDEAD_BEEF,
                arena_off: 8192,
                len: 3,
            };
            let wire = f.encode(b"abc");
            let (back, payload) = RpcFrame::decode(&wire).expect("decodes");
            assert_eq!(back, f);
            assert_eq!(payload, b"abc");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(RpcFrame::decode(b"short").is_none());
        let mut wire = RpcFrame {
            kind: RpcKind::Request,
            op_class: 0,
            req_id: 1,
            arena_off: 0,
            len: 0,
        }
        .encode(b"");
        wire[0] ^= 0xFF; // bad magic
        assert!(RpcFrame::decode(&wire).is_none());
        let mut wire2 = RpcFrame {
            kind: RpcKind::Request,
            op_class: 0,
            req_id: 1,
            arena_off: 0,
            len: 0,
        }
        .encode(b"");
        wire2[2] = 9; // unknown kind
        assert!(RpcFrame::decode(&wire2).is_none());
    }
}
