//! RPC server: bounded-queue admission control and dispatch.
//!
//! The server never blocks the BCL receive path behind a slow handler:
//! every arrival is admitted (queued) or shed *immediately*, so the
//! system-channel pool drains at wire speed and go-back-N never wedges
//! behind an overloaded service. Overload therefore degrades into counted
//! `Shed` replies instead of retransmission storms.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use suca_bcl::{BclError, BclPort, ChannelId, ProcAddr, RecvEvent};
use suca_mem::VirtAddr;
use suca_sim::mtrace::stage;
use suca_sim::{ActorCtx, Counter, Gauge, SimDuration, TraceEvent, TraceId, TraceLayer};

use crate::frame::{RpcFrame, RpcKind, ARENA_CHANNEL};

/// Server policy knobs.
#[derive(Clone, Debug)]
pub struct RpcServerConfig {
    /// Admission-queue bound: arrivals beyond this are shed. This is the
    /// paper-style answer to overload — bound the queue at the *service*
    /// layer where a reject is cheap, not at the transport where it costs
    /// go-back-N retransmissions.
    pub queue_cap: usize,
    /// Responses larger than this are RMA-written into the client's arena
    /// instead of travelling inline on the system channel. Default leaves
    /// room for the frame header in one 4 KB pool buffer.
    pub rma_threshold: u64,
    /// Scratch-buffer size — the largest RMA response this server emits.
    pub scratch_bytes: u64,
    /// [`RpcServer::serve_until_idle`] returns after the port stays quiet
    /// this long with an empty queue.
    pub idle_timeout: SimDuration,
}

impl Default for RpcServerConfig {
    fn default() -> Self {
        RpcServerConfig {
            queue_cap: 256,
            rma_threshold: 4080,
            scratch_bytes: 16 * 1024,
            idle_timeout: SimDuration::from_us(2_000),
        }
    }
}

struct Queued {
    src: ProcAddr,
    op_class: u8,
    req_id: u32,
    arena_off: u32,
    payload: Vec<u8>,
    /// Request message's trace chain (when inter-node and traced).
    trace: Option<TraceId>,
}

/// The server half of the service layer: admit-or-shed, then dispatch
/// queued requests to a handler and reply inline or via RMA.
pub struct RpcServer {
    port: BclPort,
    cfg: RpcServerConfig,
    queue: VecDeque<Queued>,
    scratch: VirtAddr,
    node: u32,
    depth_probe: Arc<AtomicU64>,
    c_admitted: Counter,
    c_served: Counter,
    c_sheds: Counter,
    c_bad_frames: Counter,
    c_rma: Counter,
    c_inline: Counter,
    g_depth: Gauge,
}

impl RpcServer {
    /// Allocate the RMA scratch buffer and register instruments.
    pub fn new(ctx: &mut ActorCtx, port: BclPort, cfg: RpcServerConfig) -> Result<Self, BclError> {
        let scratch = port.alloc_buffer(cfg.scratch_bytes)?;
        let addr = port.addr();
        let node = addr.node.0;
        let m = ctx.sim().metrics();
        let depth_probe = Arc::new(AtomicU64::new(0));
        let probe = depth_probe.clone();
        ctx.sim().timeseries().register(
            format!("n{node}.p{}.rpc.srv_queue", addr.port.0),
            node,
            // Deliberately no declared capacity: under overload the bounded
            // queue legitimately sits at `queue_cap` for long stretches
            // while shedding, which the watchdog's pegged-probe heuristic
            // would misread as a stall. Boundedness is asserted through the
            // `rpc.srv_queue_depth` gauge high-water instead.
            None,
            move |_| probe.load(Ordering::Relaxed),
        );
        Ok(RpcServer {
            queue: VecDeque::new(),
            scratch,
            node,
            depth_probe,
            c_admitted: m.counter("rpc.srv_admitted"),
            c_served: m.counter("rpc.srv_served"),
            c_sheds: m.counter("rpc.srv_sheds"),
            c_bad_frames: m.counter("rpc.srv_bad_frames"),
            c_rma: m.counter("rpc.srv_rma_responses"),
            c_inline: m.counter("rpc.srv_inline_responses"),
            g_depth: m.gauge("rpc.srv_queue_depth"),
            port,
            cfg,
        })
    }

    /// This server's port address (what clients dial).
    pub fn addr(&self) -> ProcAddr {
        self.port.addr()
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Serve requests until the port stays quiet for `idle_timeout` with an
    /// empty queue. The handler maps `(op_class, request payload)` to a
    /// response payload; it may sleep on `ctx` to model service time.
    ///
    /// Returns the number of requests served this call.
    pub fn serve_until_idle(
        &mut self,
        ctx: &mut ActorCtx,
        handler: &mut impl FnMut(&mut ActorCtx, u8, &[u8]) -> Vec<u8>,
    ) -> u64 {
        let mut served = 0u64;
        loop {
            // Admit (or shed) everything that has arrived, *before* doing
            // any service work: the pool must drain at wire speed.
            while let Some(ev) = self.port.poll_recv(ctx) {
                self.admit(ctx, ev);
            }
            while self.port.poll_send(ctx).is_some() {}
            if let Some(req) = self.queue.pop_front() {
                self.set_depth();
                self.serve_one(ctx, req, handler);
                served += 1;
                continue;
            }
            match self.port.wait_recv_timeout(ctx, self.cfg.idle_timeout) {
                Some(ev) => self.admit(ctx, ev),
                None => {
                    // Send completions (inline replies, RMA writes) land
                    // during the idle wait; drain them so every chain this
                    // server caused closes with a user poll.
                    while self.port.poll_send(ctx).is_some() {}
                    break;
                }
            }
        }
        served
    }

    fn set_depth(&self) {
        let d = self.queue.len() as u64;
        self.g_depth.set(d);
        self.depth_probe.store(d, Ordering::Relaxed);
    }

    /// Decode one arrival and either queue it or shed it with a reply.
    fn admit(&mut self, ctx: &mut ActorCtx, ev: RecvEvent) {
        let Ok(data) = self.port.recv_bytes(ctx, &ev) else {
            self.c_bad_frames.inc();
            return;
        };
        let Some((frame, inline)) = RpcFrame::decode(&data) else {
            self.c_bad_frames.inc();
            return;
        };
        if frame.kind != RpcKind::Request || inline.len() < frame.len as usize {
            self.c_bad_frames.inc();
            return;
        }
        let trace = (ev.msg_id.is_multiple_of(2) && ctx.sim().msg_trace().enabled())
            .then(|| TraceId::new(ev.src.node.0, ev.msg_id));
        if self.queue.len() >= self.cfg.queue_cap {
            self.c_sheds.inc();
            if let Some(id) = trace {
                ctx.sim().trace_event(TraceEvent::instant(
                    id,
                    self.node,
                    TraceLayer::Rpc,
                    stage::RPC_SHED,
                    ctx.now().as_ns(),
                ));
            }
            let reply = RpcFrame {
                kind: RpcKind::Shed,
                op_class: frame.op_class,
                req_id: frame.req_id,
                arena_off: frame.arena_off,
                len: 0,
            }
            .encode(&[]);
            let _ = self.send_backpressured(ctx, ev.src, &reply);
            return;
        }
        self.c_admitted.inc();
        self.queue.push_back(Queued {
            src: ev.src,
            op_class: frame.op_class,
            req_id: frame.req_id,
            arena_off: frame.arena_off,
            payload: inline[..frame.len as usize].to_vec(),
            trace,
        });
        self.set_depth();
    }

    fn serve_one(
        &mut self,
        ctx: &mut ActorCtx,
        req: Queued,
        handler: &mut impl FnMut(&mut ActorCtx, u8, &[u8]) -> Vec<u8>,
    ) {
        let t0 = ctx.now();
        let resp = handler(ctx, req.op_class, &req.payload);
        if let Some(id) = req.trace {
            ctx.sim().trace_event(
                TraceEvent::span(
                    id,
                    self.node,
                    TraceLayer::Rpc,
                    stage::RPC_SERVE,
                    t0.as_ns(),
                    ctx.now().as_ns(),
                )
                .with_bytes(resp.len() as u64),
            );
        }
        self.c_served.inc();
        if resp.len() as u64 > self.cfg.rma_threshold {
            self.respond_rma(ctx, &req, &resp);
        } else {
            self.c_inline.inc();
            let reply = RpcFrame {
                kind: RpcKind::Response,
                op_class: req.op_class,
                req_id: req.req_id,
                arena_off: req.arena_off,
                len: resp.len() as u32,
            }
            .encode(&resp);
            let _ = self.send_backpressured(ctx, req.src, &reply);
        }
    }

    /// One-sided write into the client's arena slot, then a small
    /// announcement frame. Go-back-N delivers a NIC pair's fragments in
    /// order and the host DMA queue is FIFO, so the arena data is in the
    /// client's memory before the announcement's completion event.
    fn respond_rma(&mut self, ctx: &mut ActorCtx, req: &Queued, resp: &[u8]) {
        debug_assert!(
            resp.len() as u64 <= self.cfg.scratch_bytes,
            "response exceeds scratch buffer"
        );
        self.c_rma.inc();
        if self.port.write_buffer(self.scratch, resp).is_err()
            || self
                .port
                .rma_write(
                    ctx,
                    req.src,
                    ARENA_CHANNEL,
                    u64::from(req.arena_off),
                    self.scratch,
                    resp.len() as u64,
                )
                .is_err()
        {
            self.c_bad_frames.inc();
            return;
        }
        let announce = RpcFrame {
            kind: RpcKind::RmaResponse,
            op_class: req.op_class,
            req_id: req.req_id,
            arena_off: req.arena_off,
            len: resp.len() as u32,
        }
        .encode(&[]);
        let _ = self.send_backpressured(ctx, req.src, &announce);
    }

    fn send_backpressured(
        &self,
        ctx: &mut ActorCtx,
        dst: ProcAddr,
        wire: &[u8],
    ) -> Result<u32, BclError> {
        loop {
            match self.port.send_bytes(ctx, dst, ChannelId::SYSTEM, wire) {
                Err(BclError::RingFull) => {
                    let _ = self.port.wait_send_timeout(ctx, self.cfg.idle_timeout);
                }
                r => return r,
            }
        }
    }
}
