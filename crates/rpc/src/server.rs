//! RPC server: bounded-queue admission control, per-tenant quotas and
//! priority classes, and dispatch.
//!
//! The server never blocks the BCL receive path behind a slow handler:
//! every arrival is admitted (queued) or shed *immediately*, so the
//! system-channel pool drains at wire speed and go-back-N never wedges
//! behind an overloaded service. Overload therefore degrades into counted
//! `Shed` replies instead of retransmission storms.
//!
//! Tenancy rides the same decision point: when [`RpcServerConfig::tenants`]
//! carries policies, every arrival is charged against its tenant's bounded
//! quota and enqueued at the *policy's* priority (the frame's priority is
//! advisory — a client cannot promote itself). High-priority work is
//! served first, and when the queue is full a high-priority arrival evicts
//! the newest queued low-priority request rather than being shed itself:
//! low sheds first, and every shed is counted per tenant.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use suca_bcl::{BclError, BclPort, ChannelId, ProcAddr, RecvEvent};
use suca_mem::VirtAddr;
use suca_sim::mtrace::stage;
use suca_sim::{ActorCtx, Counter, Gauge, Metrics, SimDuration, TraceEvent, TraceId, TraceLayer};

use crate::frame::{RpcFrame, RpcKind, ARENA_CHANNEL};
use crate::tenant::{Priority, TenantId, TenantPolicy};

/// Server policy knobs.
#[derive(Clone, Debug)]
pub struct RpcServerConfig {
    /// Admission-queue bound: arrivals beyond this are shed. This is the
    /// paper-style answer to overload — bound the queue at the *service*
    /// layer where a reject is cheap, not at the transport where it costs
    /// go-back-N retransmissions.
    pub queue_cap: usize,
    /// Responses larger than this are RMA-written into the client's arena
    /// instead of travelling inline on the system channel. Default leaves
    /// room for the frame header in one 4 KB pool buffer.
    pub rma_threshold: u64,
    /// Scratch-buffer size — the largest RMA response this server emits.
    pub scratch_bytes: u64,
    /// Scratch-ring depth: RMA responses that may be in flight at once.
    /// The NIC DMAs out of the scratch buffer *after* `rma_write` returns,
    /// so a buffer is only reusable once its send completion arrives;
    /// the ring lets that overlap service work instead of serializing
    /// every large response on its own DMA.
    pub scratch_slots: usize,
    /// [`RpcServer::serve_until_idle`] returns after the port stays quiet
    /// this long with an empty queue.
    pub idle_timeout: SimDuration,
    /// Per-tenant admission contracts. Empty (the default) is the open
    /// single-tenant world: any tenant is admitted against the global
    /// bound at the priority its frame requests. Non-empty means *only*
    /// listed tenants are admitted, each within its own quota, at its
    /// policy's priority.
    pub tenants: Vec<TenantPolicy>,
}

impl Default for RpcServerConfig {
    fn default() -> Self {
        RpcServerConfig {
            queue_cap: 256,
            rma_threshold: 4080,
            scratch_bytes: 16 * 1024,
            scratch_slots: 8,
            idle_timeout: SimDuration::from_us(2_000),
            tenants: Vec::new(),
        }
    }
}

/// One admitted request as the tenant-aware handler sees it.
pub struct RpcRequest<'a> {
    /// Tenant the request was admitted for.
    pub tenant: TenantId,
    /// Priority class it was served at.
    pub priority: Priority,
    /// Application operation class.
    pub op_class: u8,
    /// The client that sent it (push target for subscriptions).
    pub src: ProcAddr,
    /// Request payload.
    pub payload: &'a [u8],
}

/// A server-initiated event to deliver alongside a response (pub-sub
/// fan-out). Pushes are inline-only: a payload larger than the server's
/// `rma_threshold` is a protocol error (counted, flight-recorded,
/// dropped), never a wedged channel.
#[derive(Clone, Debug)]
pub struct RpcPush {
    /// Destination client port.
    pub dst: ProcAddr,
    /// Tenant stamped on the push frame.
    pub tenant: TenantId,
    /// Application class of the event stream.
    pub op_class: u8,
    /// 64-bit event sequence number.
    pub seq: u64,
    /// Event payload.
    pub payload: Vec<u8>,
}

/// What a tenant-aware handler returns: one response plus any pushes the
/// request triggered.
pub struct RpcReply {
    /// Response payload (inline or RMA depending on size).
    pub payload: Vec<u8>,
    /// Unsolicited events to send after the response.
    pub pushes: Vec<RpcPush>,
}

impl RpcReply {
    /// A plain response with no pushes.
    pub fn inline(payload: Vec<u8>) -> RpcReply {
        RpcReply {
            payload,
            pushes: Vec::new(),
        }
    }
}

struct Queued {
    src: ProcAddr,
    tenant: TenantId,
    priority: Priority,
    op_class: u8,
    req_id: u32,
    arena_off: u32,
    payload: Vec<u8>,
    /// Request message's trace chain (when inter-node and traced).
    trace: Option<TraceId>,
}

/// Lazily-created per-tenant instruments (`rpc.srv_admitted.t<N>`, …).
struct TenantCounters {
    admitted: Counter,
    sheds: Counter,
}

/// The server half of the service layer: admit-or-shed, then dispatch
/// queued requests to a handler and reply inline or via RMA.
pub struct RpcServer {
    port: BclPort,
    cfg: RpcServerConfig,
    queue_high: VecDeque<Queued>,
    queue_low: VecDeque<Queued>,
    /// Requests currently queued per tenant (quota enforcement).
    tenant_queued: HashMap<u8, usize>,
    tenant_counters: HashMap<u8, TenantCounters>,
    metrics: Metrics,
    /// RMA scratch ring: buffer, plus the in-flight transfer's message id
    /// (`None` = free). A buffer whose DMA has not completed must not be
    /// rewritten — the NIC reads it lazily, chunk by chunk.
    scratch: Vec<(VirtAddr, Option<u32>)>,
    scratch_next: usize,
    node: u32,
    depth_probe: Arc<AtomicU64>,
    c_admitted: Counter,
    c_served: Counter,
    c_sheds: Counter,
    c_bad_frames: Counter,
    c_rma: Counter,
    c_inline: Counter,
    c_unknown_tenant: Counter,
    c_evicted_low: Counter,
    c_pushes: Counter,
    c_push_oversize: Counter,
    c_oversize: Counter,
    c_scratch_stalls: Counter,
    g_depth: Gauge,
}

impl RpcServer {
    /// Allocate the RMA scratch ring and register instruments.
    pub fn new(ctx: &mut ActorCtx, port: BclPort, cfg: RpcServerConfig) -> Result<Self, BclError> {
        let scratch = (0..cfg.scratch_slots.max(1))
            .map(|_| Ok((port.alloc_buffer(cfg.scratch_bytes)?, None)))
            .collect::<Result<Vec<_>, BclError>>()?;
        let addr = port.addr();
        let node = addr.node.0;
        let m = ctx.sim().metrics();
        let depth_probe = Arc::new(AtomicU64::new(0));
        let probe = depth_probe.clone();
        ctx.sim().timeseries().register(
            format!("n{node}.p{}.rpc.srv_queue", addr.port.0),
            node,
            // Deliberately no declared capacity: under overload the bounded
            // queue legitimately sits at `queue_cap` for long stretches
            // while shedding, which the watchdog's pegged-probe heuristic
            // would misread as a stall. Boundedness is asserted through the
            // `rpc.srv_queue_depth` gauge high-water instead.
            None,
            move |_| probe.load(Ordering::Relaxed),
        );
        Ok(RpcServer {
            queue_high: VecDeque::new(),
            queue_low: VecDeque::new(),
            tenant_queued: HashMap::new(),
            tenant_counters: HashMap::new(),
            scratch,
            scratch_next: 0,
            node,
            depth_probe,
            c_admitted: m.counter("rpc.srv_admitted"),
            c_served: m.counter("rpc.srv_served"),
            c_sheds: m.counter("rpc.srv_sheds"),
            c_bad_frames: m.counter("rpc.srv_bad_frames"),
            c_rma: m.counter("rpc.srv_rma_responses"),
            c_inline: m.counter("rpc.srv_inline_responses"),
            c_unknown_tenant: m.counter("rpc.srv_unknown_tenant"),
            c_evicted_low: m.counter("rpc.srv_evicted_low"),
            c_pushes: m.counter("rpc.srv_pushes"),
            c_push_oversize: m.counter("rpc.srv_push_oversize"),
            c_oversize: m.counter("rpc.srv_oversize_responses"),
            c_scratch_stalls: m.counter("rpc.srv_scratch_stalls"),
            g_depth: m.gauge("rpc.srv_queue_depth"),
            metrics: m.clone(),
            port,
            cfg,
        })
    }

    /// This server's port address (what clients dial).
    pub fn addr(&self) -> ProcAddr {
        self.port.addr()
    }

    /// Current admission-queue depth (both priority classes).
    pub fn queue_depth(&self) -> usize {
        self.queue_high.len() + self.queue_low.len()
    }

    /// Serve requests until the port stays quiet for `idle_timeout` with an
    /// empty queue. The handler maps `(op_class, request payload)` to a
    /// response payload; it may sleep on `ctx` to model service time.
    ///
    /// Returns the number of requests served this call.
    pub fn serve_until_idle(
        &mut self,
        ctx: &mut ActorCtx,
        handler: &mut impl FnMut(&mut ActorCtx, u8, &[u8]) -> Vec<u8>,
    ) -> u64 {
        self.serve_tenants_until_idle(ctx, &mut |ctx, req| {
            RpcReply::inline(handler(ctx, req.op_class, req.payload))
        })
    }

    /// Tenant-aware serve loop: the handler sees the full
    /// [`RpcRequest`] (tenant, priority, source) and may return pushes
    /// alongside the response. [`RpcServer::serve_until_idle`] is the
    /// single-tenant wrapper over this.
    pub fn serve_tenants_until_idle(
        &mut self,
        ctx: &mut ActorCtx,
        handler: &mut impl FnMut(&mut ActorCtx, &RpcRequest<'_>) -> RpcReply,
    ) -> u64 {
        let mut served = 0u64;
        loop {
            // Admit (or shed) everything that has arrived, *before* doing
            // any service work: the pool must drain at wire speed.
            while let Some(ev) = self.port.poll_recv(ctx) {
                self.admit(ctx, ev);
            }
            self.drain_sends(ctx);
            if let Some(req) = self.pop_next() {
                self.set_depth();
                self.serve_one(ctx, req, handler);
                served += 1;
                continue;
            }
            match self.port.wait_recv_timeout(ctx, self.cfg.idle_timeout) {
                Some(ev) => self.admit(ctx, ev),
                None => {
                    // Send completions (inline replies, RMA writes) land
                    // during the idle wait; drain them so every chain this
                    // server caused closes with a user poll.
                    self.drain_sends(ctx);
                    break;
                }
            }
        }
        served
    }

    /// High-priority work first; within a class, FIFO.
    fn pop_next(&mut self) -> Option<Queued> {
        let req = self
            .queue_high
            .pop_front()
            .or_else(|| self.queue_low.pop_front())?;
        if let Some(n) = self.tenant_queued.get_mut(&req.tenant.0) {
            *n = n.saturating_sub(1);
        }
        Some(req)
    }

    fn set_depth(&self) {
        let d = self.queue_depth() as u64;
        self.g_depth.set(d);
        self.depth_probe.store(d, Ordering::Relaxed);
    }

    fn tenant_counters(&mut self, tenant: TenantId) -> &TenantCounters {
        let m = &self.metrics;
        self.tenant_counters
            .entry(tenant.0)
            .or_insert_with(|| TenantCounters {
                admitted: m.counter(&format!("rpc.srv_admitted.{tenant}")),
                sheds: m.counter(&format!("rpc.srv_sheds.{tenant}")),
            })
    }

    fn shed_reply(&mut self, ctx: &mut ActorCtx, dst: ProcAddr, frame: &RpcFrame) {
        let reply = RpcFrame {
            kind: RpcKind::Shed,
            op_class: frame.op_class,
            req_id: frame.req_id,
            arena_off: frame.arena_off,
            len: 0,
            tenant: frame.tenant,
            prio: frame.prio,
        }
        .encode(&[]);
        let _ = self.send_backpressured(ctx, dst, &reply);
    }

    fn shed(
        &mut self,
        ctx: &mut ActorCtx,
        src: ProcAddr,
        frame: &RpcFrame,
        trace: Option<TraceId>,
    ) {
        self.c_sheds.inc();
        self.tenant_counters(frame.tenant).sheds.inc();
        if let Some(id) = trace {
            ctx.sim().trace_event(TraceEvent::instant(
                id,
                self.node,
                TraceLayer::Rpc,
                stage::RPC_SHED,
                ctx.now().as_ns(),
            ));
        }
        self.shed_reply(ctx, src, frame);
    }

    /// Decode one arrival and either queue it or shed it with a reply.
    fn admit(&mut self, ctx: &mut ActorCtx, ev: RecvEvent) {
        let Ok(data) = self.port.recv_bytes(ctx, &ev) else {
            self.c_bad_frames.inc();
            return;
        };
        let Some((frame, inline)) = RpcFrame::decode(&data) else {
            self.c_bad_frames.inc();
            return;
        };
        if frame.kind != RpcKind::Request || inline.len() < frame.len as usize {
            self.c_bad_frames.inc();
            return;
        }
        let trace = (ev.msg_id.is_multiple_of(2) && ctx.sim().msg_trace().enabled())
            .then(|| TraceId::new(ev.src.node.0, ev.msg_id));
        // Resolve the admission contract: open world (no policies) trusts
        // the frame's priority against the global bound only; a policy
        // table admits listed tenants at the policy's priority and quota.
        let (priority, quota) = if self.cfg.tenants.is_empty() {
            (frame.prio, self.cfg.queue_cap)
        } else {
            match self
                .cfg
                .tenants
                .iter()
                .find(|p| p.tenant == frame.tenant)
                .map(|p| (p.priority, p.quota))
            {
                Some(pq) => pq,
                None => {
                    self.c_unknown_tenant.inc();
                    self.shed(ctx, ev.src, &frame, trace);
                    return;
                }
            }
        };
        if self
            .tenant_queued
            .get(&frame.tenant.0)
            .copied()
            .unwrap_or(0)
            >= quota
        {
            self.shed(ctx, ev.src, &frame, trace);
            return;
        }
        if self.queue_depth() >= self.cfg.queue_cap {
            // Full house: a high-priority arrival takes the newest queued
            // low-priority request's place (low sheds first); anything
            // else is shed itself.
            if priority == Priority::High {
                if let Some(victim) = self.queue_low.pop_back() {
                    if let Some(n) = self.tenant_queued.get_mut(&victim.tenant.0) {
                        *n = n.saturating_sub(1);
                    }
                    self.c_sheds.inc();
                    self.c_evicted_low.inc();
                    self.tenant_counters(victim.tenant).sheds.inc();
                    let vframe = RpcFrame {
                        kind: RpcKind::Shed,
                        op_class: victim.op_class,
                        req_id: victim.req_id,
                        arena_off: victim.arena_off,
                        len: 0,
                        tenant: victim.tenant,
                        prio: victim.priority,
                    };
                    self.shed_reply(ctx, victim.src, &vframe);
                } else {
                    self.shed(ctx, ev.src, &frame, trace);
                    return;
                }
            } else {
                self.shed(ctx, ev.src, &frame, trace);
                return;
            }
        }
        self.c_admitted.inc();
        self.tenant_counters(frame.tenant).admitted.inc();
        *self.tenant_queued.entry(frame.tenant.0).or_insert(0) += 1;
        let q = Queued {
            src: ev.src,
            tenant: frame.tenant,
            priority,
            op_class: frame.op_class,
            req_id: frame.req_id,
            arena_off: frame.arena_off,
            payload: inline[..frame.len as usize].to_vec(),
            trace,
        };
        match priority {
            Priority::High => self.queue_high.push_back(q),
            Priority::Low => self.queue_low.push_back(q),
        }
        self.set_depth();
    }

    fn serve_one(
        &mut self,
        ctx: &mut ActorCtx,
        req: Queued,
        handler: &mut impl FnMut(&mut ActorCtx, &RpcRequest<'_>) -> RpcReply,
    ) {
        let t0 = ctx.now();
        let reply = handler(
            ctx,
            &RpcRequest {
                tenant: req.tenant,
                priority: req.priority,
                op_class: req.op_class,
                src: req.src,
                payload: &req.payload,
            },
        );
        if let Some(id) = req.trace {
            ctx.sim().trace_event(
                TraceEvent::span(
                    id,
                    self.node,
                    TraceLayer::Rpc,
                    stage::RPC_SERVE,
                    t0.as_ns(),
                    ctx.now().as_ns(),
                )
                .with_bytes(reply.payload.len() as u64),
            );
        }
        self.c_served.inc();
        let resp = reply.payload;
        if resp.len() as u64 > self.cfg.rma_threshold {
            self.respond_rma(ctx, &req, &resp);
        } else {
            self.c_inline.inc();
            let wire = RpcFrame {
                kind: RpcKind::Response,
                op_class: req.op_class,
                req_id: req.req_id,
                arena_off: req.arena_off,
                len: resp.len() as u32,
                tenant: req.tenant,
                prio: req.priority,
            }
            .encode(&resp);
            let _ = self.send_backpressured(ctx, req.src, &wire);
        }
        for push in reply.pushes {
            self.send_push(ctx, &push);
        }
    }

    /// Send one fan-out event. Oversize payloads are a counted protocol
    /// error that trips the flight recorder — pushes are inline-only and
    /// must fit the system channel's pool buffer.
    fn send_push(&mut self, ctx: &mut ActorCtx, push: &RpcPush) {
        if push.payload.len() as u64 > self.cfg.rma_threshold {
            self.c_push_oversize.inc();
            ctx.sim().msg_trace().dump_once(&format!(
                "rpc push payload {}B exceeds inline bound {}B (tenant {}, class {})",
                push.payload.len(),
                self.cfg.rma_threshold,
                push.tenant,
                push.op_class
            ));
            return;
        }
        self.c_pushes.inc();
        let wire = RpcFrame::push(
            push.tenant,
            push.op_class,
            push.seq,
            push.payload.len() as u32,
        )
        .encode(&push.payload);
        let _ = self.send_backpressured(ctx, push.dst, &wire);
    }

    /// One-sided write into the client's arena slot, then a small
    /// announcement frame. Go-back-N delivers a NIC pair's fragments in
    /// order and the host DMA queue is FIFO, so the arena data is in the
    /// client's memory before the announcement's completion event.
    fn respond_rma(&mut self, ctx: &mut ActorCtx, req: &Queued, resp: &[u8]) {
        // A handler response that outgrows the scratch buffer is a server
        // bug, but on a monitored run it must surface as a counted,
        // flight-recorded shed — not a corrupted write or a panic.
        if resp.len() as u64 > self.cfg.scratch_bytes {
            self.c_oversize.inc();
            ctx.sim().msg_trace().dump_once(&format!(
                "rpc response {}B exceeds scratch buffer {}B (tenant {}, class {})",
                resp.len(),
                self.cfg.scratch_bytes,
                req.tenant,
                req.op_class
            ));
            let frame = RpcFrame {
                kind: RpcKind::Shed,
                op_class: req.op_class,
                req_id: req.req_id,
                arena_off: req.arena_off,
                len: 0,
                tenant: req.tenant,
                prio: req.priority,
            };
            self.shed_reply(ctx, req.src, &frame);
            return;
        }
        // Claim the next scratch buffer, waiting out its previous
        // transfer if that DMA is still in flight: the NIC reads the
        // buffer lazily, chunk by chunk, so rewriting it early would
        // corrupt the response already on the wire.
        let slot = self.scratch_next;
        self.scratch_next = (self.scratch_next + 1) % self.scratch.len();
        while self.scratch[slot].1.is_some() {
            self.drain_sends(ctx);
            if self.scratch[slot].1.is_none() {
                break;
            }
            match self.port.wait_send_timeout(ctx, self.cfg.idle_timeout) {
                Some(ev) => self.note_send(ev.msg_id),
                None => break,
            }
        }
        if self.scratch[slot].1.is_some() {
            // The oldest transfer never completed within the idle
            // timeout — shed rather than corrupt an in-flight response.
            self.c_scratch_stalls.inc();
            ctx.sim().msg_trace().dump_once(&format!(
                "rpc scratch ring stalled: slot {slot} DMA never completed (tenant {}, class {})",
                req.tenant, req.op_class
            ));
            let frame = RpcFrame {
                kind: RpcKind::Shed,
                op_class: req.op_class,
                req_id: req.req_id,
                arena_off: req.arena_off,
                len: 0,
                tenant: req.tenant,
                prio: req.priority,
            };
            self.shed_reply(ctx, req.src, &frame);
            return;
        }
        self.c_rma.inc();
        let buf = self.scratch[slot].0;
        if self.port.write_buffer(buf, resp).is_err() {
            self.c_bad_frames.inc();
            return;
        }
        match self.port.rma_write(
            ctx,
            req.src,
            ARENA_CHANNEL,
            u64::from(req.arena_off),
            buf,
            resp.len() as u64,
        ) {
            Ok(msg_id) => self.scratch[slot].1 = Some(msg_id),
            Err(_) => {
                self.c_bad_frames.inc();
                return;
            }
        }
        let announce = RpcFrame {
            kind: RpcKind::RmaResponse,
            op_class: req.op_class,
            req_id: req.req_id,
            arena_off: req.arena_off,
            len: resp.len() as u32,
            tenant: req.tenant,
            prio: req.priority,
        }
        .encode(&[]);
        let _ = self.send_backpressured(ctx, req.src, &announce);
    }

    fn send_backpressured(
        &mut self,
        ctx: &mut ActorCtx,
        dst: ProcAddr,
        wire: &[u8],
    ) -> Result<u32, BclError> {
        loop {
            match self.port.send_bytes(ctx, dst, ChannelId::SYSTEM, wire) {
                Err(BclError::RingFull) => {
                    if let Some(ev) = self.port.wait_send_timeout(ctx, self.cfg.idle_timeout) {
                        self.note_send(ev.msg_id);
                    }
                }
                r => return r,
            }
        }
    }

    /// Retire the scratch slot (if any) whose RMA transfer `msg_id`
    /// completed; completions of inline sends match no slot and fall
    /// through.
    fn note_send(&mut self, msg_id: u32) {
        for s in &mut self.scratch {
            if s.1 == Some(msg_id) {
                s.1 = None;
            }
        }
    }

    /// Drain queued send completions, retiring any finished scratch
    /// transfers along the way.
    fn drain_sends(&mut self, ctx: &mut ActorCtx) {
        while let Some(ev) = self.port.poll_send(ctx) {
            self.note_send(ev.msg_id);
        }
    }
}
