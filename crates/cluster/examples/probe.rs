use suca_cluster::{measure_bandwidth, measure_one_way, ClusterSpec};

fn main() {
    let lat = measure_one_way(ClusterSpec::dawning3000(2), 0, 1, 0, 3, 10);
    println!(
        "inter 0-len one-way = {:.3} us (paper 18.3)",
        lat.one_way_us
    );
    let lat_intra = measure_one_way(ClusterSpec::dawning3000(2), 0, 0, 0, 3, 10);
    println!(
        "intra 0-len one-way = {:.3} us (paper 2.7)",
        lat_intra.one_way_us
    );
    let bw = measure_bandwidth(ClusterSpec::dawning3000(2), 0, 1, 128 * 1024, 24, 8);
    println!(
        "inter 128KB bandwidth = {:.1} MB/s (paper 146)",
        bw.mb_per_sec
    );
    let bwi = measure_bandwidth(ClusterSpec::dawning3000(2), 0, 0, 128 * 1024, 8, 8);
    println!(
        "intra 128KB bandwidth = {:.1} MB/s (paper 391)",
        bwi.mb_per_sec
    );
}
