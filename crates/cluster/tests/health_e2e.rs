//! End-to-end tests for the online health engine (`suca-obs::health`).
//!
//! A synthetic RPC completion stream is scheduled as plain sim events at
//! known offsets past each sampler tick boundary, so the SLO windows see an
//! exactly scripted healthy → all-errors → healthy timeline. This pins down
//! the three properties the harnesses rely on:
//!
//! 1. **Determinism** — the `suca.health.v1` report is byte-identical at
//!    any engine shard count and across reruns of the same seed.
//! 2. **Clean silence** — a healthy feed fires nothing.
//! 3. **Lifecycle** — an error burst fires exactly the burn-rate rule
//!    (pending → firing), and the alert resolves once the feed recovers.

use suca_cluster::ClusterSpec;
use suca_sim::{HealthRule, RunOutcome, SimTime};

/// Default telemetry sample period (see `TelemetryConfig::default`).
const TICK_NS: u64 = 10_000;

/// Small windows so the scripted ~40-tick run exercises the full alert
/// lifecycle: breach at >10% errors (5% budget × factor 2) over a 3-tick
/// short and 6-tick long window, fire after 2 breached ticks, clear after 3
/// healthy ones.
fn rules() -> Vec<HealthRule> {
    vec![HealthRule::burn_rate("rpc.err_burn", None, 50_000, 2, 3, 6, 5).with_lifecycle(2, 3)]
}

/// Build a 4-node cluster, script the completion feed, run to quiescence,
/// and return the health report JSON.
///
/// `errors` injects an all-errors band during ticks 10..20; otherwise every
/// completion is Ok. Ten completions land 1 ns (+i) past each tick
/// boundary, so each closed tick window holds exactly ten events and the
/// feed is identical regardless of how the event engine is sharded.
fn run_synthetic(shards: Option<usize>, errors: bool) -> String {
    let c = ClusterSpec::dawning3000(4)
        .with_engine_shards(shards)
        .with_health(rules())
        .build();
    let sim = c.sim.clone();
    for tick in 0..40u64 {
        let fail_band = errors && (10..20).contains(&tick);
        for i in 0..10u64 {
            let ok = !fail_band;
            sim.schedule_at(SimTime::from_ns(tick * TICK_NS + 1 + i), move |s| {
                s.health().observe_rpc(0, 0, ok, 1_500 + i * 100, 64);
            });
        }
    }
    // Keep-alive: the sampler stops once the event queue drains, so park a
    // no-op far enough out that the alert has time to resolve (clear needs
    // 3 healthy ticks after the long window flushes the error band).
    sim.schedule_at(SimTime::from_ns(45 * TICK_NS), |_| {});
    assert_eq!(sim.run(), RunOutcome::Completed);
    let variant = if errors { "overload" } else { "clean" };
    let report = sim.health().report("health_e2e", variant, 0xDA3000, &[]);
    if errors {
        assert!(!report.is_silent(), "error band should have fired an alert");
        assert_eq!(report.unresolved(), 0, "alert should resolve post-recovery");
    }
    report.to_json()
}

#[test]
fn reports_are_byte_identical_across_shard_counts_and_reruns() {
    let per_node = run_synthetic(None, true);
    let one = run_synthetic(Some(1), true);
    let three = run_synthetic(Some(3), true);
    let rerun = run_synthetic(None, true);
    assert_eq!(
        per_node, one,
        "1-shard report diverged from per-node shards"
    );
    assert_eq!(
        per_node, three,
        "3-shard report diverged from per-node shards"
    );
    assert_eq!(per_node, rerun, "rerun of the same seed diverged");
    assert!(per_node.contains("\"schema\": \"suca.health.v1\""));
}

#[test]
fn clean_feed_is_alert_silent() {
    let json = run_synthetic(None, false);
    assert!(
        json.contains("\"counts\": {\"fired\": 0, \"resolved\": 0, \"active\": 0}"),
        "clean feed fired an alert:\n{json}"
    );
}

#[test]
fn overload_fires_exactly_the_burn_rate_rule_then_resolves() {
    let c = ClusterSpec::dawning3000(4).with_health(rules()).build();
    let sim = c.sim.clone();
    for tick in 0..40u64 {
        let fail_band = (10..20).contains(&tick);
        for i in 0..10u64 {
            let ok = !fail_band;
            sim.schedule_at(SimTime::from_ns(tick * TICK_NS + 1 + i), move |s| {
                s.health().observe_rpc(0, 0, ok, 1_500, 64);
            });
        }
    }
    sim.schedule_at(SimTime::from_ns(45 * TICK_NS), |_| {});
    assert_eq!(sim.run(), RunOutcome::Completed);

    let alerts = sim.health().alerts();
    assert_eq!(alerts.len(), 1, "expected exactly one alert: {alerts:?}");
    let a = &alerts[0];
    assert_eq!(a.rule, "rpc.err_burn");
    // Pending precedes firing; error band starts inside tick 10 (closed at
    // the tick-11 rotation, t = 110 µs), so the alert cannot predate that.
    assert!(a.pending_ns <= a.fired_ns);
    assert!(
        a.fired_ns >= 11 * TICK_NS,
        "fired too early: {}",
        a.fired_ns
    );
    let resolved = a.resolved_ns.expect("alert should resolve after recovery");
    assert!(resolved > a.fired_ns);
    assert_eq!(sim.health().active_count(), 0);

    // The lifecycle also lands on the Perfetto health track.
    let stages: Vec<String> = sim
        .trace_events()
        .iter()
        .filter(|e| e.layer == suca_sim::TraceLayer::Health)
        .map(|e| e.stage.to_string())
        .collect();
    assert!(
        stages.iter().any(|s| s == "health:firing:rpc.err_burn"),
        "missing firing instant on health track: {stages:?}"
    );
    assert!(
        stages.iter().any(|s| s == "health:resolved:rpc.err_burn"),
        "missing resolved instant on health track: {stages:?}"
    );
}
