//! Overload behaviour of the blocking receive path: `wait_recv_timeout`
//! under a fast sender when the receiver has stopped posting buffers.
//!
//! Two regimes, matching the paper's flow-control story:
//!
//! * **Normal channels** rendezvous on posted buffers. An unposted channel
//!   bounces the message back with a Reject; the sender's NIC retries on a
//!   timer while the receiver observes clean timeouts (`None`), and the
//!   message delivers as soon as a buffer appears — no data loss, bounded
//!   queues, and a silent watchdog throughout.
//! * **The system channel** absorbs bursts into a fixed 64-buffer pool and
//!   silently discards overflow ("the message will be discarded" — §3 of
//!   the paper). Draining through `wait_recv_timeout` yields exactly
//!   pool-many events and then a timeout, never a stall.

use std::sync::Arc;

use parking_lot::Mutex;

use suca_bcl::{ChannelId, ProcAddr, SendStatus};
use suca_cluster::{ClusterSpec, SimBarrier};
use suca_sim::{RunOutcome, SimDuration};

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
        .collect()
}

/// Receiver refuses to post buffers while a fast sender hammers a normal
/// channel: every blocking wait times out, every message is rejected and
/// retried NIC-side, and the moment buffers appear the whole backlog
/// delivers. The watchdog must stay silent — reject/retry is flow control,
/// not a stall.
#[test]
fn unposted_channel_times_out_then_recovers() {
    const MSGS: u32 = 4;
    const STARVE_POLLS: u32 = 10;
    let cluster = ClusterSpec::dawning3000(2).with_seed(0x0E41).build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr_b: Arc<Mutex<Option<ProcAddr>>> = Arc::new(Mutex::new(None));

    let ab = addr_b.clone();
    let b2 = barrier.clone();
    cluster.spawn_process(1, "rx", move |ctx, env| {
        let port = env.open_port(ctx);
        *ab.lock() = Some(port.addr());
        b2.wait(ctx);
        // Starvation phase: no buffer posted, so nothing can complete. The
        // blocking wait must return None on schedule, not hang, while the
        // sender's messages bounce off the unposted channel.
        let mut timeouts = 0;
        let mut max_recv_depth = 0;
        for _ in 0..STARVE_POLLS {
            let ev = port.wait_recv_timeout(ctx, SimDuration::from_us(100));
            assert!(ev.is_none(), "nothing was posted; got {ev:?}");
            timeouts += 1;
            max_recv_depth = max_recv_depth.max(port.queue_depths().1);
        }
        assert_eq!(timeouts, STARVE_POLLS);
        assert_eq!(
            max_recv_depth, 0,
            "rejected messages must not occupy the completion queue"
        );
        // Recovery: a normal channel holds one posted buffer at a time, so
        // post/receive/re-post; the NIC-side retry timer re-offers each
        // rejected message within 50 µs of a buffer appearing. Retry order
        // across messages is a NIC scheduling detail, so match by salt.
        let mut salts = Vec::new();
        for i in 0..MSGS {
            port.post_recv(ctx, 0, 4096).unwrap();
            let ev = port
                .wait_recv_timeout(ctx, SimDuration::from_ms(5))
                .unwrap_or_else(|| panic!("message {i} never arrived after recovery"));
            assert_eq!(ev.channel, ChannelId::normal(0));
            let data = port.recv_bytes(ctx, &ev).unwrap();
            let salt = data[0];
            assert_eq!(data, pattern(512, salt), "message with salt {salt} damaged");
            salts.push(salt);
        }
        salts.sort_unstable();
        let expect: Vec<u8> = (0..MSGS as u8).collect();
        assert_eq!(salts, expect, "every rejected message must deliver once");
    });
    let b3 = barrier.clone();
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        b3.wait(ctx);
        let dst = addr_b.lock().expect("receiver published its address");
        for i in 0..MSGS {
            port.send_bytes(ctx, dst, ChannelId::normal(0), &pattern(512, i as u8))
                .unwrap();
        }
        // All sends eventually complete Ok: the rejects were absorbed by
        // the NIC retry machinery, invisible to the application.
        for i in 0..MSGS {
            let ev = port
                .wait_send_timeout(ctx, SimDuration::from_ms(20))
                .unwrap_or_else(|| panic!("send {i} never completed"));
            assert_eq!(ev.status, SendStatus::Ok, "send {i} failed");
        }
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    assert!(
        sim.get_count("bcl.rx_not_ready") > 0,
        "receiver never refused a message; starvation phase is vacuous"
    );
    assert!(
        sim.get_count("mcp.rejects_sent") > 0,
        "no reject control packets on the wire"
    );
    assert!(
        sim.get_count("bcl.msg_retries") > 0,
        "sender NIC never retried"
    );
    assert_eq!(
        sim.get_count("bcl.msg_failed"),
        0,
        "no message may exhaust its retry budget"
    );
    assert_eq!(
        sim.get_count("watchdog.stalls"),
        0,
        "reject/retry flow control must not look like a stall"
    );
}

/// A burst past the system pool's capacity while the receiver sits idle:
/// overflow is silently discarded (the paper's stated policy), the drain
/// yields exactly pool-many messages, and the wait after the last one is a
/// clean timeout. The idle window stays under the watchdog's pegged-probe
/// budget, so a full pool alone never counts as a stall.
#[test]
fn system_pool_burst_drains_to_exactly_pool_capacity() {
    const OVERFLOW: u32 = 36;
    let cluster = ClusterSpec::dawning3000(2).with_seed(0x0E42).build();
    let sim = cluster.sim.clone();
    let pool = cluster.nodes[0].bcl.config().system_pool.buffers;
    let barrier = SimBarrier::new(&sim, 2);
    let addr_b: Arc<Mutex<Option<ProcAddr>>> = Arc::new(Mutex::new(None));

    let ab = addr_b.clone();
    let b2 = barrier.clone();
    cluster.spawn_process(1, "rx", move |ctx, env| {
        let port = env.open_port(ctx);
        *ab.lock() = Some(port.addr());
        b2.wait(ctx);
        // Idle through the burst (but well under the ~5 ms pegged-probe
        // watchdog budget), then drain with the blocking timeout wait.
        ctx.sleep(SimDuration::from_ms(3));
        let mut got = 0u32;
        while let Some(ev) = port.wait_recv_timeout(ctx, SimDuration::from_us(200)) {
            let _ = port.recv_bytes(ctx, &ev).unwrap();
            got += 1;
            assert!(got <= pool, "received more than the pool can hold");
        }
        assert_eq!(got, pool, "drain must yield exactly pool-many messages");
        // The pool is empty again: one more wait is a pure timeout.
        assert!(port
            .wait_recv_timeout(ctx, SimDuration::from_us(200))
            .is_none());
    });
    let b3 = barrier.clone();
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        b3.wait(ctx);
        let dst = addr_b.lock().expect("receiver published its address");
        for i in 0..pool + OVERFLOW {
            port.send_bytes(ctx, dst, ChannelId::SYSTEM, &i.to_le_bytes())
                .unwrap();
            // Pace on the send ring so the sender itself never overflows;
            // the receiver-side pool is the only bottleneck under test.
            let ev = port
                .wait_send_timeout(ctx, SimDuration::from_ms(1))
                .expect("send ring wedged");
            assert_eq!(ev.status, SendStatus::Ok);
        }
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    assert_eq!(
        sim.get_count("bcl.sys_pool_discard"),
        u64::from(OVERFLOW),
        "every message past the pool must be discarded, none twice"
    );
    assert_eq!(
        sim.get_count("watchdog.stalls"),
        0,
        "a transiently full pool is not a stall"
    );
}
