//! Stress and edge-condition tests for the BCL stack: SRAM back-pressure,
//! ring overflow, retry exhaustion, heavy loss, full-duplex bulk traffic,
//! many ports, mixed intra/inter traffic, tiny go-back-N windows.

use std::sync::Arc;

use parking_lot::Mutex;

use suca_bcl::{BclConfig, BclError, ChannelId, SendStatus};
use suca_cluster::{ClusterSpec, SanKind, SimBarrier};
use suca_myrinet::FaultPlan;
use suca_sim::{RunOutcome, SimDuration};

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(13).wrapping_add(salt))
        .collect()
}

fn two_proc(
    spec: ClusterSpec,
    rx_node: u32,
    rx: impl FnOnce(&mut suca_sim::ActorCtx, suca_bcl::BclPort) + Send + 'static,
    tx: impl FnOnce(&mut suca_sim::ActorCtx, suca_bcl::BclPort, suca_bcl::ProcAddr) + Send + 'static,
) -> suca_sim::Sim {
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    let b2 = barrier.clone();
    let a2 = addr.clone();
    cluster.spawn_process(rx_node, "rx", move |ctx, env| {
        let port = env.open_port(ctx);
        *a2.lock() = Some(port.addr());
        b2.wait(ctx);
        rx(ctx, port);
    });
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        barrier.wait(ctx);
        let dst = addr.lock().expect("rx ready");
        tx(ctx, port, dst);
    });
    assert_eq!(sim.run(), RunOutcome::Completed, "stress workload hung");
    sim
}

#[test]
fn tiny_sram_forces_backpressure_but_delivers() {
    let mut cfg = BclConfig::dawning3000();
    cfg.nic_sram_bytes = 8 * 1024; // two fragments of staging space
    let spec = ClusterSpec::dawning3000(2).with_bcl(cfg);
    let payload = pattern(200_000, 1);
    let expect = payload.clone();
    let sim = two_proc(
        spec,
        1,
        move |ctx, port| {
            port.post_recv(ctx, 0, 200_000).unwrap();
            let ev = port.wait_recv(ctx);
            let data = port.recv_bytes(ctx, &ev).unwrap();
            assert_eq!(data, expect);
        },
        move |ctx, port, dst| {
            let buf = port.alloc_buffer(200_000).unwrap();
            port.write_buffer(buf, &payload).unwrap();
            port.send(ctx, dst, ChannelId::normal(0), buf, 200_000)
                .unwrap();
            let ev = port.wait_send(ctx);
            assert_eq!(ev.status, SendStatus::Ok);
        },
    );
    assert!(
        sim.get_count("bcl.sram_stall") > 0,
        "SRAM back-pressure never engaged; test is vacuous"
    );
}

#[test]
fn send_ring_overflow_returns_ring_full_then_recovers() {
    let mut cfg = BclConfig::dawning3000();
    cfg.limits.send_ring = 4;
    let spec = ClusterSpec::dawning3000(2).with_bcl(cfg);
    let sim = two_proc(
        spec,
        1,
        move |ctx, port| {
            // Consume everything that eventually arrives.
            let mut got = 0;
            while got < 12 {
                let ev = port.wait_recv(ctx);
                let _ = port.recv_bytes(ctx, &ev).unwrap();
                got += 1;
            }
        },
        move |ctx, port, dst| {
            let buf = port.alloc_buffer(4096).unwrap();
            port.write_buffer(buf, &pattern(4096, 2)).unwrap();
            let mut ring_full_seen = false;
            let mut sent = 0;
            while sent < 12 {
                match port.send(ctx, dst, ChannelId::SYSTEM, buf, 4096) {
                    Ok(_) => sent += 1,
                    Err(BclError::RingFull) => {
                        ring_full_seen = true;
                        // Wait for a completion to drain the ring.
                        let _ = port.wait_send(ctx);
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            assert!(ring_full_seen, "ring never filled; test is vacuous");
        },
    );
    let _ = sim;
}

#[test]
fn reject_retry_budget_exhaustion_reports_rejected() {
    let mut cfg = BclConfig::dawning3000();
    cfg.reliability.max_message_retries = 3;
    cfg.reliability.reject_retry_delay = SimDuration::from_us(20);
    let spec = ClusterSpec::dawning3000(2).with_bcl(cfg);
    let sim = two_proc(
        spec,
        1,
        move |ctx, port| {
            // Never post the normal channel; just stay alive long enough.
            ctx.sleep(SimDuration::from_ms(2));
            let _ = port;
        },
        move |ctx, port, dst| {
            let buf = port.alloc_buffer(512).unwrap();
            port.write_buffer(buf, &pattern(512, 3)).unwrap();
            port.send(ctx, dst, ChannelId::normal(5), buf, 512).unwrap();
            // First event: Ok (injected); the retries then exhaust and a
            // Rejected completion follows.
            let ev1 = port.wait_send(ctx);
            assert_eq!(ev1.status, SendStatus::Ok);
            let ev2 = port.wait_send(ctx);
            assert_eq!(ev2.status, SendStatus::Rejected, "retry budget must expire");
        },
    );
    assert_eq!(sim.get_count("bcl.msg_failed"), 1);
    assert!(sim.get_count("bcl.msg_retries") >= 3);
}

#[test]
fn heavy_loss_20_percent_still_delivers_in_order() {
    let mut spec = ClusterSpec::dawning3000(2).with_seed(11);
    if let SanKind::Myrinet(ref mut cfg) = spec.san {
        cfg.fault = FaultPlan {
            drop_prob: 0.20,
            corrupt_prob: 0.05,
        };
    }
    const N: u32 = 15;
    let sim = two_proc(
        spec,
        1,
        move |ctx, port| {
            for i in 0..N {
                let ev = port.wait_recv(ctx);
                let data = port.recv_bytes(ctx, &ev).unwrap();
                assert_eq!(data, pattern(2000, i as u8), "message {i} damaged");
            }
        },
        move |ctx, port, dst| {
            for i in 0..N {
                port.send_bytes(ctx, dst, ChannelId::SYSTEM, &pattern(2000, i as u8))
                    .unwrap();
                let _ = port.wait_send(ctx);
                // Pace so the system pool never overflows under retx storms.
                ctx.sleep(SimDuration::from_us(400));
            }
        },
    );
    assert!(
        sim.get_count("bcl.timeouts") > 0,
        "no timeouts under 20% loss?"
    );
}

#[test]
fn full_duplex_bulk_transfers_both_directions() {
    let cluster = ClusterSpec::dawning3000(2).build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addrs: Arc<Mutex<Vec<Option<suca_bcl::ProcAddr>>>> = Arc::new(Mutex::new(vec![None, None]));
    const LEN: usize = 150_000;
    for me in 0..2u32 {
        let barrier = barrier.clone();
        let addrs = addrs.clone();
        cluster.spawn_process(me, format!("p{me}"), move |ctx, env| {
            let port = env.open_port(ctx);
            addrs.lock()[me as usize] = Some(port.addr());
            port.post_recv(ctx, 0, LEN as u64).unwrap();
            barrier.wait(ctx);
            let peer = addrs.lock()[(1 - me) as usize].expect("peer ready");
            let buf = port.alloc_buffer(LEN as u64).unwrap();
            port.write_buffer(buf, &pattern(LEN, me as u8)).unwrap();
            port.send(ctx, peer, ChannelId::normal(0), buf, LEN as u64)
                .unwrap();
            // Receive the peer's bulk message while ours is in flight.
            let ev = port.wait_recv(ctx);
            let data = port.recv_bytes(ctx, &ev).unwrap();
            assert_eq!(data, pattern(LEN, 1 - me as u8));
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed, "duplex hung");
}

#[test]
fn eight_ports_all_to_all_on_two_nodes() {
    let cluster = ClusterSpec::dawning3000(2).build();
    let sim = cluster.sim.clone();
    const P: u32 = 8;
    let barrier = SimBarrier::new(&sim, P);
    let addrs: Arc<Mutex<Vec<Option<suca_bcl::ProcAddr>>>> =
        Arc::new(Mutex::new(vec![None; P as usize]));
    let received = Arc::new(Mutex::new(0u32));
    for me in 0..P {
        let barrier = barrier.clone();
        let addrs = addrs.clone();
        let received = received.clone();
        cluster.spawn_process(me % 2, format!("p{me}"), move |ctx, env| {
            let port = env.open_port(ctx);
            addrs.lock()[me as usize] = Some(port.addr());
            barrier.wait(ctx);
            // Everyone sends a tagged message to everyone else (mixed
            // intra-node and inter-node destinations on the same port).
            let peers: Vec<_> = (0..P)
                .filter(|p| *p != me)
                .map(|p| addrs.lock()[p as usize].expect("ready"))
                .collect();
            for (k, peer) in peers.iter().enumerate() {
                // Stagger slightly so 7 simultaneous senders cannot blow the
                // 64-buffer pools.
                ctx.sleep(SimDuration::from_us(5 * (k as u64 + 1)));
                port.send_bytes(ctx, *peer, ChannelId::SYSTEM, &me.to_le_bytes())
                    .unwrap();
            }
            for _ in 0..P - 1 {
                let ev = port.wait_recv(ctx);
                let data = port.recv_bytes(ctx, &ev).unwrap();
                let from = u32::from_le_bytes(data.try_into().expect("4B"));
                assert_eq!(
                    suca_os::NodeId(from % 2),
                    ev.src.node,
                    "sender id inconsistent with source node"
                );
                *received.lock() += 1;
            }
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed, "all-to-all hung");
    assert_eq!(*received.lock(), P * (P - 1));
}

#[test]
fn tiny_gbn_window_still_moves_large_messages() {
    let mut cfg = BclConfig::dawning3000();
    cfg.reliability.window = 2;
    let spec = ClusterSpec::dawning3000(2).with_bcl(cfg);
    let payload = pattern(100_000, 9);
    let expect = payload.clone();
    two_proc(
        spec,
        1,
        move |ctx, port| {
            port.post_recv(ctx, 0, 100_000).unwrap();
            let ev = port.wait_recv(ctx);
            assert_eq!(port.recv_bytes(ctx, &ev).unwrap(), expect);
        },
        move |ctx, port, dst| {
            let buf = port.alloc_buffer(100_000).unwrap();
            port.write_buffer(buf, &payload).unwrap();
            port.send(ctx, dst, ChannelId::normal(0), buf, 100_000)
                .unwrap();
            let ev = port.wait_send(ctx);
            assert_eq!(ev.status, SendStatus::Ok);
        },
    );
}

#[test]
fn concurrent_rma_writes_to_disjoint_offsets() {
    let cluster = ClusterSpec::dawning3000(3).build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 3);
    let done = SimBarrier::new(&sim, 3);
    let target: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));

    let b0 = barrier.clone();
    let d0 = done.clone();
    let t0 = target.clone();
    cluster.spawn_process(0, "window-owner", move |ctx, env| {
        let port = env.open_port(ctx);
        *t0.lock() = Some(port.addr());
        let win = port.bind_open(ctx, 0, 8192).unwrap();
        b0.wait(ctx);
        d0.wait(ctx);
        // The writers' completion events mean "injected"; give the last
        // receive-side DMA time to land before inspecting the window.
        ctx.sleep(SimDuration::from_us(100));
        // Each writer owned a disjoint 4 KiB half.
        let lo = port.read_buffer(win, 4096).unwrap();
        let hi = port.read_buffer(win.add(4096), 4096).unwrap();
        assert_eq!(lo, pattern(4096, 1));
        assert_eq!(hi, pattern(4096, 2));
    });
    for w in 1..3u32 {
        let barrier = barrier.clone();
        let done = done.clone();
        let target = target.clone();
        cluster.spawn_process(w, format!("writer{w}"), move |ctx, env| {
            let port = env.open_port(ctx);
            barrier.wait(ctx);
            let dst = target.lock().expect("owner ready");
            let buf = port.alloc_buffer(4096).unwrap();
            port.write_buffer(buf, &pattern(4096, w as u8)).unwrap();
            let off = (w as u64 - 1) * 4096;
            port.rma_write(ctx, dst, 0, off, buf, 4096).unwrap();
            let ev = port.wait_send(ctx);
            assert_eq!(ev.status, SendStatus::Ok);
            done.wait(ctx);
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed, "rma writers hung");
}

#[test]
fn port_close_frees_the_slot_and_purges_pins() {
    let cluster = ClusterSpec::dawning3000(1).build();
    let sim = cluster.sim.clone();
    let node = cluster.nodes[0].clone();
    cluster.spawn_process(0, "cycler", move |ctx, env| {
        let (h0, m0, _) = node.bcl.kmod.pin_stats();
        let port = suca_bcl::BclPort::open(ctx, &env.node.bcl, &env.proc).unwrap();
        let (_, m1, _) = node.bcl.kmod.pin_stats();
        assert!(m1 > m0, "port open pins the system pool");
        port.close(ctx).unwrap();
        // The same process may open a fresh port after closing.
        let port2 = suca_bcl::BclPort::open(ctx, &env.node.bcl, &env.proc).unwrap();
        port2.close(ctx).unwrap();
        let _ = h0;
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
}

#[test]
fn mesh_fabric_with_faults_also_recovers() {
    let mut spec = ClusterSpec::dawning3000_mesh(4).with_seed(5);
    if let SanKind::Mesh(ref mut cfg) = spec.san {
        cfg.fault = FaultPlan {
            drop_prob: 0.05,
            corrupt_prob: 0.05,
        };
    }
    const N: u32 = 10;
    let sim = two_proc(
        spec,
        3, // diagonal corner of the mesh: multiple hops
        move |ctx, port| {
            for i in 0..N {
                let ev = port.wait_recv(ctx);
                assert_eq!(port.recv_bytes(ctx, &ev).unwrap(), pattern(3000, i as u8));
            }
        },
        move |ctx, port, dst| {
            for i in 0..N {
                port.send_bytes(ctx, dst, ChannelId::SYSTEM, &pattern(3000, i as u8))
                    .unwrap();
                let _ = port.wait_send(ctx);
                ctx.sleep(SimDuration::from_us(200));
            }
        },
    );
    assert!(
        sim.get_count("fabric.dropped") + sim.get_count("fabric.corrupted") > 0,
        "mesh fault injection never fired"
    );
}
