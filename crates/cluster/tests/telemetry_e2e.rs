//! End-to-end telemetry: the continuous sampler, the critical-path
//! bottleneck attribution, and the stall watchdog, all driven through real
//! cluster runs. Clean streams must reproduce the paper's Fig 5/7 stage
//! identities within 1% and keep the watchdog silent; a fault-injected
//! wedged retransmission loop must trip it; fixed seeds must give
//! byte-identical timeseries JSON; and the NIC SRAM working set must stay
//! bounded while pinned host memory grows with the application working set.

use std::sync::Arc;

use parking_lot::Mutex;

use suca_bcl::ChannelId;
use suca_cluster::{Cluster, ClusterSpec, SanKind, SimBarrier};
use suca_myrinet::FaultPlan;
use suca_sim::{critpath, RunOutcome, SimDuration, SimTime, TelemetryConfig, WatchdogConfig};

/// Stream `msgs` messages of `size` bytes node 0 → node 1 from a rotating
/// working set of `bufs` distinct send buffers, with a 0 B pacing reply per
/// message so neither the system pool nor the send ring ever saturates.
fn stream(spec: ClusterSpec, size: u64, msgs: u32, bufs: usize) -> Cluster {
    let use_system = size <= spec.bcl.system_pool.buffer_bytes;
    let channel = if use_system {
        ChannelId::SYSTEM
    } else {
        ChannelId::normal(0)
    };
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    {
        let barrier = barrier.clone();
        let addr = addr.clone();
        cluster.spawn_process(1, "rx", move |ctx, env| {
            let port = env.open_port(ctx);
            *addr.lock() = Some(port.addr());
            let buf = if use_system {
                None
            } else {
                Some(port.post_recv(ctx, 0, size).expect("post"))
            };
            barrier.wait(ctx);
            for _ in 0..msgs {
                let ev = port.wait_recv(ctx);
                let data = port.recv_bytes(ctx, &ev).expect("recv");
                assert_eq!(data.len() as u64, size);
                if let Some(a) = buf {
                    port.post_recv_at(ctx, 0, a, size).expect("re-post");
                }
                port.send_bytes(ctx, ev.src, ChannelId::SYSTEM, b"")
                    .expect("pacing reply");
            }
        });
    }
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        let working_set: Vec<_> = (0..bufs)
            .map(|i| {
                let buf = port.alloc_buffer(size.max(1)).expect("alloc");
                port.write_buffer(buf, &vec![i as u8; size as usize])
                    .expect("fill");
                buf
            })
            .collect();
        barrier.wait(ctx);
        let dst = addr.lock().expect("rx ready");
        for i in 0..msgs {
            let buf = working_set[i as usize % bufs];
            port.send(ctx, dst, channel, buf, size).expect("send");
            loop {
                let ev = port.wait_recv(ctx);
                let _ = port.recv_bytes(ctx, &ev).expect("consume reply");
                if ev.len == 0 {
                    break;
                }
            }
            while port.poll_send(ctx).is_some() {}
        }
    });
    assert_eq!(sim.run(), RunOutcome::Completed, "telemetry stream hung");
    cluster
}

#[test]
fn clean_stream_matches_fig5_fig7_identities_and_watchdog_stays_silent() {
    let cluster = stream(ClusterSpec::dawning3000(2), 0, 20, 1);
    let sim = &cluster.sim;

    // The default-armed watchdog must not fire on a clean harness.
    assert_eq!(sim.get_count("watchdog.stalls"), 0, "clean run flagged");

    // The sampler ran on the sim clock and saw every registered probe.
    let snap = sim.timeseries().snapshot();
    assert!(snap.samples_taken > 0, "sampler never ticked");
    assert!(
        snap.series.iter().all(|s| !s.points.is_empty()),
        "every registered probe must be sampled"
    );

    // Critical-path attribution reproduces the paper's stage identities.
    let report = critpath::bottleneck_report(&critpath::analyze(&cluster.trace_events()));
    let b0 = report.bucket_for(0).expect("0 B bucket");
    let host_us = b0.host_ns_per_msg() / 1000.0;
    let fill = b0.request_fill_share();
    let kernel_us = b0.kernel_ns_per_msg() / 1000.0;
    assert!(
        (host_us - 7.04).abs() / 7.04 < 0.01,
        "Fig 5 host send overhead drifted: {host_us} us"
    );
    assert!(
        fill > 0.5,
        "Fig 5: request fill (dispatch+PIO) must exceed half the send window, got {fill}"
    );
    assert!(
        (kernel_us - 4.17).abs() / 4.17 < 0.01,
        "Fig 7 kernel-resident stage sum drifted: {kernel_us} us"
    );
}

#[test]
fn watchdog_fires_on_wedged_retransmission_loop() {
    // Drop every packet under an RMA read: data sends complete at
    // injection (firmware reliability is transparent to the sender), but a
    // read only completes when the remote's data lands — which it never
    // does. The go-back-N loop retransmits the request forever (300 us
    // timer), the chain records a SEND but never a terminal stage, and the
    // event queue never drains — the livelock shape a deadlock detector
    // misses. Tighten the budget below the retransmit period so the chain
    // looks stale at check time within a short bounded run.
    let mut spec = ClusterSpec::dawning3000(2).with_seed(23);
    if let SanKind::Myrinet(ref mut cfg) = spec.san {
        cfg.fault = FaultPlan {
            drop_prob: 1.0,
            corrupt_prob: 0.0,
        };
    }
    let spec = spec.with_telemetry(TelemetryConfig {
        sample_period: SimDuration::from_us(20),
        watchdog: WatchdogConfig {
            chain_budget_ns: 100_000, // < the 300 us retransmit timeout
            check_every: 1,
            ..WatchdogConfig::default()
        },
    });

    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    {
        let barrier = barrier.clone();
        let addr = addr.clone();
        cluster.spawn_process(1, "rx", move |ctx, env| {
            let port = env.open_port(ctx);
            port.bind_open(ctx, 0, 4096).expect("bind open channel");
            *addr.lock() = Some(port.addr());
            barrier.wait(ctx);
            let _ = port.wait_recv(ctx); // never arrives
        });
    }
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        let into = port.alloc_buffer(1024).expect("alloc");
        barrier.wait(ctx);
        let dst = addr.lock().expect("rx ready");
        port.rma_read(ctx, dst, 0, 0, into, 1024).expect("read");
        let _ = port.wait_send(ctx); // the data never comes back
    });

    assert!(!sim.msg_trace().has_dumped());
    assert_eq!(
        sim.run_until(SimTime::from_ns(30_000_000)),
        RunOutcome::Pending,
        "a wedged retransmission loop never drains the queue"
    );
    assert!(
        sim.get_count("watchdog.stalls") >= 1,
        "watchdog must flag the open chain"
    );
    assert!(
        sim.msg_trace().has_dumped(),
        "first stall must dump the flight recorder"
    );
}

#[test]
fn fixed_seed_cluster_timeseries_is_byte_identical() {
    let run = || {
        let c = stream(ClusterSpec::dawning3000(2).with_seed(99), 0, 15, 1);
        c.sim.timeseries().snapshot().to_json()
    };
    let a = run();
    assert!(a.contains("\"series\""));
    assert_eq!(a, run(), "same seed must give byte-identical telemetry");
}

#[test]
fn sram_stays_bounded_while_pinned_pages_grow_with_working_set() {
    // Satellite: the paper's resource story. The NIC's 2 MB SRAM holds a
    // bounded working set regardless of application footprint, while the
    // kernel pin table grows with the set of distinct user buffers.
    let high_waters = |bufs: usize| {
        let spec = ClusterSpec::dawning3000(2);
        let sram_cap = spec.bcl.nic_sram_bytes;
        let c = stream(spec, 16 * 1024, 32, bufs);
        let sram = c.sim.metrics().gauge("nic.sram_used").high_water();
        let pinned = c.sim.metrics().gauge("kmod.pinned_bytes").high_water();
        assert!(
            sram <= sram_cap,
            "NIC SRAM over capacity: {sram} > {sram_cap}"
        );
        assert_eq!(c.sim.get_count("watchdog.stalls"), 0);
        (sram, pinned)
    };
    let (sram_small, pinned_small) = high_waters(2);
    let (sram_large, pinned_large) = high_waters(24);
    assert!(
        pinned_large > pinned_small,
        "pinned host bytes must grow with the working set: {pinned_large} vs {pinned_small}"
    );
    // The SRAM footprint is workload-paced, not working-set-sized: a 12x
    // larger application footprint must not cost 12x the NIC SRAM.
    assert!(
        sram_large < sram_small * 4,
        "NIC SRAM must not scale with the application working set: {sram_large} vs {sram_small}"
    );
}
