//! End-to-end fleet-mode trace sampling: the sampled population must be
//! the hash-predicted subset, byte-identical across reruns and shard
//! counts for a fixed seed, every admitted chain must stay complete, and
//! the flight-recorder path (`TraceId::NONE`) must keep recording.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use suca_bcl::{ChannelId, ProcAddr};
use suca_cluster::{ClusterSpec, SimBarrier};
use suca_sim::mtrace::{check_completeness_sampled, to_chrome_json, ChainPolicy, SampleSpec};
use suca_sim::{RunOutcome, TraceEvent, TraceId};

const SEED: u64 = 0x5A11;
const NODES: u32 = 8;
const MSGS: u32 = 8;
const PAYLOAD: usize = 64;
const RATE_PPM: u32 = 250_000; // 25%

/// Run an 8-node neighbor ring with every node sending `MSGS` messages
/// right, and return the buffered trace events.
fn run_ring(shards: Option<usize>, sample_ppm: Option<u32>) -> Vec<TraceEvent> {
    let mut spec = ClusterSpec::dawning3000(NODES)
        .with_seed(SEED)
        .with_engine_shards(shards);
    if let Some(ppm) = sample_ppm {
        spec = spec.with_trace_sampling(ppm);
    }
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, NODES);
    let addrs: Arc<Mutex<Vec<Option<ProcAddr>>>> = Arc::new(Mutex::new(vec![None; NODES as usize]));
    for node in 0..NODES {
        let (b, a) = (barrier.clone(), addrs.clone());
        cluster.spawn_process(node, "ring", move |ctx, env| {
            let port = env.open_port(ctx);
            a.lock().unwrap()[node as usize] = Some(port.addr());
            for i in 0..MSGS {
                port.post_recv(ctx, i as u16, PAYLOAD as u64)
                    .expect("post recv");
            }
            b.wait(ctx);
            let right = a.lock().unwrap()[((node + 1) % NODES) as usize].expect("neighbor up");
            let payload = vec![node as u8; PAYLOAD];
            for i in 0..MSGS {
                port.send_bytes(ctx, right, ChannelId::normal(i as u16), &payload)
                    .expect("send");
            }
            for _ in 0..MSGS {
                port.wait_recv(ctx);
            }
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed, "ring hung");
    cluster.trace_events()
}

fn chain_ids(events: &[TraceEvent]) -> BTreeSet<TraceId> {
    events
        .iter()
        .map(|e| e.trace)
        .filter(|t| *t != TraceId::NONE)
        .collect()
}

#[test]
fn sampled_population_is_the_hash_predicted_subset() {
    let full = run_ring(None, None);
    let sampled = run_ring(None, Some(RATE_PPM));
    let spec = SampleSpec::ratio_ppm(RATE_PPM).with_seed(SEED);

    let all_chains = chain_ids(&full);
    let kept_chains = chain_ids(&sampled);
    assert!(!kept_chains.is_empty(), "sampler admitted nothing");
    assert!(
        kept_chains.len() < all_chains.len(),
        "sampler at 25% kept all {} chains",
        all_chains.len()
    );
    // Exactly the chains the hash admits, nothing more, nothing less —
    // sampling is a pure function of (TraceId, spec), not of buffer luck.
    let predicted: BTreeSet<TraceId> = all_chains
        .iter()
        .copied()
        .filter(|t| spec.admits(*t))
        .collect();
    assert_eq!(kept_chains, predicted);
    // Chains are dropped whole: every surviving event of an admitted chain
    // in the full run also survives in the sampled run.
    let kept_events = sampled.len();
    let expected_events = full
        .iter()
        .filter(|e| e.trace == TraceId::NONE || spec.admits(e.trace))
        .count();
    assert_eq!(kept_events, expected_events);
}

#[test]
fn sampled_chains_stay_complete() {
    let sampled = run_ring(None, Some(RATE_PPM));
    let spec = SampleSpec::ratio_ppm(RATE_PPM).with_seed(SEED);
    let report = check_completeness_sampled(&sampled, &ChainPolicy::bcl(), spec);
    assert!(
        report.violations.is_empty(),
        "sampled completeness violations:\n{}",
        report.violations.join("\n")
    );
    assert!(!report.chains.is_empty(), "no chains checked");
}

#[test]
fn sampled_trace_is_deterministic_across_reruns_and_shard_counts() {
    let a = to_chrome_json(&run_ring(None, Some(RATE_PPM)));
    let b = to_chrome_json(&run_ring(None, Some(RATE_PPM)));
    assert_eq!(a, b, "sampled trace not reproducible at fixed seed");
    let single = to_chrome_json(&run_ring(Some(1), Some(RATE_PPM)));
    assert_eq!(a, single, "sampled trace differs under single-queue engine");
    let two = to_chrome_json(&run_ring(Some(2), Some(RATE_PPM)));
    assert_eq!(a, two, "sampled trace differs at 2 shards");
}

#[test]
fn flight_recorder_survives_sampling() {
    // Even at rate 0 (admit nothing), TraceId::NONE events keep recording —
    // the flight recorder stays armed in fleet mode.
    let sampled = run_ring(None, Some(0));
    assert!(
        chain_ids(&sampled).is_empty(),
        "rate 0 admitted a traced chain"
    );
    let full = run_ring(None, None);
    let none_full = full.iter().filter(|e| e.trace == TraceId::NONE).count();
    let none_sampled = sampled.iter().filter(|e| e.trace == TraceId::NONE).count();
    assert_eq!(
        none_sampled, none_full,
        "sampling perturbed untraced events"
    );
}
