//! End-to-end per-message causal tracing: a clean ping-pong chain must show
//! the full send→trap→inject→hop→rx→DMA→poll journey with exactly one trap
//! and zero interrupts; fault-injected runs must still close every chain
//! with all retransmissions attributed; protocol errors must trip the
//! flight recorder without panicking the firmware.

use std::sync::Arc;

use parking_lot::Mutex;

use suca_bcl::wire::{WireHeader, WireKind};
use suca_bcl::{BclConfig, ChannelId, PortId, SendStatus};
use suca_cluster::{ClusterSpec, SanKind, SimBarrier};
use suca_myrinet::{FabricNodeId, FaultPlan};
use suca_sim::mtrace::{check_completeness, stage, ChainPolicy};
use suca_sim::{RunOutcome, SimDuration, TraceEvent, TraceLayer};

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(13).wrapping_add(salt))
        .collect()
}

/// Build a two-process cluster (tx on node 0, rx on `rx_node`), run it to
/// completion, and hand back the cluster for trace inspection.
fn two_proc(
    spec: ClusterSpec,
    rx_node: u32,
    rx: impl FnOnce(&mut suca_sim::ActorCtx, suca_bcl::BclPort) + Send + 'static,
    tx: impl FnOnce(&mut suca_sim::ActorCtx, suca_bcl::BclPort, suca_bcl::ProcAddr) + Send + 'static,
) -> suca_cluster::Cluster {
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    let b2 = barrier.clone();
    let a2 = addr.clone();
    cluster.spawn_process(rx_node, "rx", move |ctx, env| {
        let port = env.open_port(ctx);
        *a2.lock() = Some(port.addr());
        b2.wait(ctx);
        rx(ctx, port);
    });
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        barrier.wait(ctx);
        let dst = addr.lock().expect("rx ready");
        tx(ctx, port, dst);
    });
    assert_eq!(sim.run(), RunOutcome::Completed, "traced workload hung");
    cluster
}

fn stages_of(evs: &[TraceEvent], trace: suca_sim::TraceId) -> Vec<&TraceEvent> {
    evs.iter().filter(|e| e.trace == trace).collect()
}

fn first_at(evs: &[&TraceEvent], stage_name: &str) -> Option<u64> {
    evs.iter()
        .filter(|e| e.stage.as_ref() == stage_name)
        .map(|e| e.start_ns)
        .min()
}

#[test]
fn clean_ping_pong_chain_closes_with_one_trap_no_interrupts() {
    let payload = pattern(10_000, 7);
    let expect = payload.clone();
    let cluster = two_proc(
        ClusterSpec::dawning3000(2),
        1,
        move |ctx, port| {
            port.post_recv(ctx, 0, 10_000).unwrap();
            let ev = port.wait_recv(ctx);
            assert_eq!(port.recv_bytes(ctx, &ev).unwrap(), expect);
        },
        move |ctx, port, dst| {
            let buf = port.alloc_buffer(10_000).unwrap();
            port.write_buffer(buf, &payload).unwrap();
            port.send(ctx, dst, ChannelId::normal(0), buf, 10_000)
                .unwrap();
            let ev = port.wait_send(ctx);
            assert_eq!(ev.status, SendStatus::Ok);
        },
    );

    let events = cluster.trace_events();
    let report = check_completeness(&events, &ChainPolicy::bcl());
    assert!(
        report.is_closed(),
        "clean run must satisfy the BCL chain policy: {:?}",
        report.violations
    );

    // Exactly one inter-node message was sent; find its chain.
    let sends: Vec<_> = report.chains.iter().filter(|c| c.has_send).collect();
    assert_eq!(sends.len(), 1, "expected exactly one traced send chain");
    let chain = sends[0];
    assert_eq!(chain.trace.origin, 0, "message originated on node 0");
    assert_eq!(chain.traps, 1, "BCL: exactly one trap per message");
    assert_eq!(chain.interrupts, 0, "BCL: zero interrupts per message");
    assert!(chain.injects >= 1, "fragments must be injected");
    assert!(chain.hops >= 1, "myrinet has at least one switch hop");
    // Whichever side polls first closes the chain; both are completions.
    assert!(
        matches!(
            chain.terminal.as_deref(),
            Some(stage::POLL_RECV) | Some(stage::POLL_SEND)
        ),
        "a completion poll closes the chain, got {:?}",
        chain.terminal
    );

    // The journey is causally ordered: send → trap → descriptor → inject →
    // hop → rx → data DMA → completion-queue DMA → user poll.
    let evs = stages_of(&events, chain.trace);
    let send = first_at(&evs, stage::SEND).expect("send span");
    let trap = first_at(&evs, stage::TRAP).expect("trap instant");
    let desc = first_at(&evs, stage::DESCRIPTOR).expect("descriptor span");
    let inject = first_at(&evs, stage::INJECT).expect("inject span");
    let hop = first_at(&evs, stage::HOP).expect("hop instant");
    let rx = first_at(&evs, stage::RX).expect("rx span");
    let dma = first_at(&evs, stage::DMA_DATA).expect("data DMA span");
    let poll = first_at(&evs, stage::POLL_RECV).expect("poll instant");
    assert!(send <= trap, "trap happens inside the send call");
    assert!(trap <= desc, "descriptor fetch follows the trap");
    assert!(desc <= inject, "injection follows the descriptor");
    assert!(inject <= hop, "switch hop follows injection");
    assert!(hop <= rx, "remote rx follows the hop");
    assert!(rx <= dma, "data DMA follows rx processing");
    assert!(dma <= poll, "user poll observes the DMA'd message");
    // The receiver's completion was DMA'd into its queue (node 1).
    assert!(
        evs.iter()
            .any(|e| e.stage.as_ref() == stage::DMA_CQ && e.node == 1),
        "receive completion must be DMA'd to the remote user queue"
    );
    // The sender polled its own completion without another trap.
    assert!(
        evs.iter()
            .any(|e| e.stage.as_ref() == stage::POLL_SEND && e.node == 0),
        "send completion is observed by user-space polling"
    );
    assert!(
        evs.iter()
            .all(|e| e.layer != TraceLayer::Kernel || e.node == 0),
        "no kernel events on the receive side — semi-user-level contract"
    );
}

#[test]
fn faulty_run_closes_every_chain_and_attributes_all_retransmissions() {
    let mut spec = ClusterSpec::dawning3000(2).with_seed(11);
    if let SanKind::Myrinet(ref mut cfg) = spec.san {
        cfg.fault = FaultPlan {
            drop_prob: 0.20,
            corrupt_prob: 0.05,
        };
    }
    const N: u32 = 15;
    let cluster = two_proc(
        spec,
        1,
        move |ctx, port| {
            for i in 0..N {
                let ev = port.wait_recv(ctx);
                let data = port.recv_bytes(ctx, &ev).unwrap();
                assert_eq!(data, pattern(2000, i as u8), "message {i} damaged");
            }
        },
        move |ctx, port, dst| {
            for i in 0..N {
                port.send_bytes(ctx, dst, ChannelId::SYSTEM, &pattern(2000, i as u8))
                    .unwrap();
                let _ = port.wait_send(ctx);
                // Pace so the system pool never overflows under retx storms.
                ctx.sleep(SimDuration::from_us(400));
            }
        },
    );
    assert!(
        cluster.sim.get_count("bcl.timeouts") > 0,
        "no timeouts under 20% loss — fault injection is vacuous"
    );

    let events = cluster.trace_events();
    let report = check_completeness(&events, &ChainPolicy::bcl());
    assert!(
        report.is_closed(),
        "every chain must close under faults: {:?}",
        report.violations
    );
    assert!(
        report.total_retransmissions() > 0,
        "retransmissions happened but none were traced"
    );
    let sends = report.chains.iter().filter(|c| c.has_send).count();
    assert_eq!(sends as u32, N, "one traced chain per message");
}

#[test]
fn reject_exhaustion_closes_the_chain_as_a_failure() {
    let mut cfg = BclConfig::dawning3000();
    cfg.reliability.max_message_retries = 3;
    cfg.reliability.reject_retry_delay = SimDuration::from_us(20);
    let cluster = two_proc(
        ClusterSpec::dawning3000(2).with_bcl(cfg),
        1,
        move |ctx, port| {
            // Never post the normal channel; just stay alive long enough.
            ctx.sleep(SimDuration::from_ms(2));
            let _ = port;
        },
        move |ctx, port, dst| {
            let buf = port.alloc_buffer(512).unwrap();
            port.write_buffer(buf, &pattern(512, 3)).unwrap();
            port.send(ctx, dst, ChannelId::normal(5), buf, 512).unwrap();
            let ev1 = port.wait_send(ctx);
            assert_eq!(ev1.status, SendStatus::Ok);
            let ev2 = port.wait_send(ctx);
            assert_eq!(ev2.status, SendStatus::Rejected);
        },
    );
    assert_eq!(cluster.sim.get_count("bcl.msg_failed"), 1);

    let events = cluster.trace_events();
    let report = check_completeness(&events, &ChainPolicy::bcl());
    assert!(
        report.is_closed(),
        "rejected message must still close: {:?}",
        report.violations
    );
    let chain = report
        .chains
        .iter()
        .find(|c| c.has_send)
        .expect("traced send chain");
    let evs = stages_of(&events, chain.trace);
    assert!(
        evs.iter().any(|e| e.stage.as_ref() == stage::REJECT_SENT),
        "receiver's rejects must appear on the sender's chain"
    );
    assert!(
        evs.iter().any(|e| e.stage.as_ref() == stage::MSG_RETRY),
        "each retry must be traced"
    );
    assert!(
        evs.iter().any(|e| e.stage.as_ref() == stage::MSG_FAILED),
        "budget exhaustion must be traced as the failure terminal"
    );
}

#[test]
fn orphan_read_reply_counts_protocol_error_and_dumps_flight_recorder() {
    let cluster = ClusterSpec::dawning3000(2).build();
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    cluster.spawn_process(1, "rogue", move |ctx, _env| {
        // A read-reply fragment for a request node 0 never issued: the
        // firmware must count a protocol error and trip the flight
        // recorder instead of panicking.
        let payload = pattern(64, 9);
        let header = WireHeader {
            kind: WireKind::RmaReadData,
            channel: ChannelId::SYSTEM,
            src_port: PortId(0),
            dst_port: PortId(0),
            msg_id: 777,
            seq: 0,
            offset: 0,
            total_len: 64,
            frag_len: 64,
            epoch: 0,
        };
        fabric.inject(
            ctx.sim(),
            FabricNodeId(1),
            FabricNodeId(0),
            header.encode(&payload),
        );
    });
    assert!(!sim.msg_trace().has_dumped());
    assert_eq!(
        sim.run(),
        RunOutcome::Completed,
        "protocol error must not hang"
    );
    assert_eq!(
        sim.get_count("mcp.protocol_errors"),
        1,
        "orphan read reply is a counted protocol error"
    );
    assert!(
        sim.get_count("bcl.rx_orphan_read_data") >= 1,
        "orphan counter still fires"
    );
    assert!(
        sim.msg_trace().has_dumped(),
        "protocol error must trip the flight recorder"
    );
}

#[test]
fn intra_node_messages_are_not_traced() {
    let cluster = ClusterSpec::dawning3000(1).build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    let b2 = barrier.clone();
    let a2 = addr.clone();
    cluster.spawn_process(0, "rx", move |ctx, env| {
        let port = env.open_port(ctx);
        *a2.lock() = Some(port.addr());
        b2.wait(ctx);
        let ev = port.wait_recv(ctx);
        let _ = port.recv_bytes(ctx, &ev).unwrap();
    });
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        barrier.wait(ctx);
        let dst = addr.lock().expect("rx ready");
        port.send_bytes(ctx, dst, ChannelId::SYSTEM, &pattern(256, 4))
            .unwrap();
        let _ = port.wait_send(ctx);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    let events = cluster.trace_events();
    assert!(
        events
            .iter()
            .all(|e| e.trace.is_none() || e.trace.msg_id % 2 == 0),
        "intra-node (odd msg_id) traffic must never be traced"
    );
    let report = check_completeness(&events, &ChainPolicy::bcl());
    assert!(report.is_closed(), "{:?}", report.violations);
    assert!(
        report.chains.iter().all(|c| !c.has_send),
        "no inter-node sends in this run"
    );
}
