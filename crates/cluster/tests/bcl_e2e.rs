//! End-to-end tests of the full BCL stack over the simulated SANs:
//! the paper's headline numbers, data integrity through fragmentation and
//! faults, rendezvous semantics, security rejections, RMA, and the
//! critical-path trap/interrupt accounting behind Table 1.

use std::sync::Arc;

use parking_lot::Mutex;

use suca_bcl::{BclError, BclPort, ChannelId, SendStatus};
use suca_cluster::{measure_bandwidth, measure_one_way, ClusterSpec, SimBarrier};
use suca_myrinet::FaultPlan;
use suca_sim::RunOutcome;

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
        .collect()
}

// ---------------------------------------------------------------- headline

#[test]
fn paper_headline_inter_node_latency_18_3us() {
    let r = measure_one_way(ClusterSpec::dawning3000(2), 0, 1, 0, 3, 10);
    assert!(
        (r.one_way_us - 18.3).abs() < 0.4,
        "0-len inter-node one-way {} us; paper says 18.3",
        r.one_way_us
    );
}

#[test]
fn paper_headline_intra_node_latency_2_7us() {
    let r = measure_one_way(ClusterSpec::dawning3000(2), 0, 0, 0, 3, 10);
    assert!(
        (r.one_way_us - 2.7).abs() < 0.1,
        "0-len intra-node one-way {} us; paper says 2.7",
        r.one_way_us
    );
}

#[test]
fn paper_headline_inter_node_bandwidth_146mbps() {
    let r = measure_bandwidth(ClusterSpec::dawning3000(2), 0, 1, 128 * 1024, 24, 8);
    assert!(
        (r.mb_per_sec - 146.0).abs() < 5.0,
        "128KB inter-node bandwidth {} MB/s; paper says 146",
        r.mb_per_sec
    );
}

#[test]
fn paper_headline_intra_node_bandwidth_391mbps() {
    let r = measure_bandwidth(ClusterSpec::dawning3000(2), 0, 0, 128 * 1024, 8, 8);
    assert!(
        (r.mb_per_sec - 391.0).abs() < 12.0,
        "128KB intra-node bandwidth {} MB/s; paper says 391",
        r.mb_per_sec
    );
}

#[test]
fn latency_is_monotone_in_message_size() {
    let sizes = [0u64, 1024, 4096, 16384];
    let mut prev = 0.0;
    for s in sizes {
        let r = measure_one_way(ClusterSpec::dawning3000(2), 0, 1, s, 2, 5);
        assert!(
            r.one_way_us > prev,
            "latency not monotone at {s}: {} <= {prev}",
            r.one_way_us
        );
        prev = r.one_way_us;
    }
}

#[test]
fn half_bandwidth_below_4kb() {
    // Paper: "the half-bandwidth is reached with less than 4 KB message".
    let spec = ClusterSpec::dawning3000(2);
    let peak = 146.0;
    let bw_4k = measure_bandwidth(spec, 0, 1, 4096, 48, 8);
    assert!(
        bw_4k.mb_per_sec >= peak / 2.0,
        "4KB bandwidth {} below half of peak",
        bw_4k.mb_per_sec
    );
}

// --------------------------------------------------------------- integrity

#[test]
fn large_message_integrity_through_fragmentation() {
    let cluster = ClusterSpec::dawning3000(2).build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let payload = pattern(300_000, 7); // ~74 fragments, odd length
    let expect = payload.clone();
    let addr_b: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));

    let b2 = barrier.clone();
    let ab = addr_b.clone();
    cluster.spawn_process(1, "rx", move |ctx, env| {
        let port = env.open_port(ctx);
        *ab.lock() = Some(port.addr());
        port.post_recv(ctx, 3, 300_000).unwrap();
        b2.wait(ctx);
        let ev = port.wait_recv(ctx);
        assert_eq!(ev.channel, ChannelId::normal(3));
        assert_eq!(ev.len, 300_000);
        let data = port.recv_bytes(ctx, &ev).unwrap();
        assert_eq!(data, expect, "payload corrupted in flight");
    });
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        b2_wait_then_send(
            ctx,
            &port,
            &barrier,
            &addr_b,
            &payload,
            ChannelId::normal(3),
        );
        let ev = port.wait_send(ctx);
        assert_eq!(ev.status, SendStatus::Ok);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
}

fn b2_wait_then_send(
    ctx: &mut suca_sim::ActorCtx,
    port: &BclPort,
    barrier: &SimBarrier,
    addr_b: &Arc<Mutex<Option<suca_bcl::ProcAddr>>>,
    payload: &[u8],
    channel: ChannelId,
) {
    barrier.wait(ctx);
    let dst = addr_b.lock().expect("receiver ready");
    let buf = port.alloc_buffer(payload.len() as u64).unwrap();
    port.write_buffer(buf, payload).unwrap();
    port.send(ctx, dst, channel, buf, payload.len() as u64)
        .unwrap();
}

#[test]
fn reliability_recovers_from_drops_and_corruption() {
    let mut spec = ClusterSpec::dawning3000(2);
    if let suca_cluster::SanKind::Myrinet(ref mut cfg) = spec.san {
        cfg.fault = FaultPlan {
            drop_prob: 0.05,
            corrupt_prob: 0.05,
        };
    }
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr_b: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    const N: u32 = 40;

    let b2 = barrier.clone();
    let ab = addr_b.clone();
    cluster.spawn_process(1, "rx", move |ctx, env| {
        let port = env.open_port(ctx);
        *ab.lock() = Some(port.addr());
        b2.wait(ctx);
        // Messages must arrive complete, uncorrupted and in order.
        for i in 0..N {
            let ev = port.wait_recv(ctx);
            let data = port.recv_bytes(ctx, &ev).unwrap();
            assert_eq!(data, pattern(1000, i as u8), "message {i} damaged");
        }
    });
    let b3 = barrier.clone();
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        b3.wait(ctx);
        let dst = addr_b.lock().unwrap();
        for i in 0..N {
            port.send_bytes(ctx, dst, ChannelId::SYSTEM, &pattern(1000, i as u8))
                .unwrap();
            // Pace so the 64-buffer system pool can't overflow.
            let _ = port.wait_send(ctx);
        }
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    assert!(
        sim.get_count("fabric.dropped") + sim.get_count("fabric.corrupted") > 0,
        "fault injection never fired; test is vacuous"
    );
    assert!(
        sim.get_count("bcl.retx_packets") > 0,
        "reliability layer never retransmitted"
    );
}

// -------------------------------------------------------------- rendezvous

#[test]
fn late_posted_normal_channel_is_retried_and_delivered() {
    let cluster = ClusterSpec::dawning3000(2).build();
    let sim = cluster.sim.clone();
    let addr_b: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    let barrier = SimBarrier::new(&sim, 2);

    let ab = addr_b.clone();
    let b2 = barrier.clone();
    cluster.spawn_process(1, "rx", move |ctx, env| {
        let port = env.open_port(ctx);
        *ab.lock() = Some(port.addr());
        b2.wait(ctx);
        // Post *after* the sender has already sent: the reject/retry path.
        ctx.sleep(suca_sim::SimDuration::from_us(400));
        port.post_recv(ctx, 0, 512).unwrap();
        let ev = port.wait_recv(ctx);
        let data = port.recv_bytes(ctx, &ev).unwrap();
        assert_eq!(data, pattern(512, 9));
    });
    let b3 = barrier.clone();
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        b3.wait(ctx);
        let dst = addr_b.lock().unwrap();
        port.send_bytes(ctx, dst, ChannelId::normal(0), &pattern(512, 9))
            .unwrap();
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    assert!(
        sim.get_count("bcl.msg_retries") > 0,
        "expected message-level retries"
    );
}

#[test]
fn system_pool_overflow_discards_as_the_paper_specifies() {
    let cluster = ClusterSpec::dawning3000(2).build();
    let sim = cluster.sim.clone();
    let pool_size = cluster.nodes[0].bcl.config().system_pool.buffers;
    let addr_b: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    let barrier = SimBarrier::new(&sim, 2);

    let ab = addr_b.clone();
    let b2 = barrier.clone();
    cluster.spawn_process(1, "rx", move |ctx, env| {
        let port = env.open_port(ctx);
        *ab.lock() = Some(port.addr());
        b2.wait(ctx);
        // Never consume: the pool fills, later messages are discarded.
        ctx.sleep(suca_sim::SimDuration::from_ms(50));
        let mut got = 0;
        while port.poll_recv(ctx).is_some() {
            got += 1;
        }
        assert_eq!(got as u32, pool_size, "exactly pool-many delivered");
    });
    let b3 = barrier.clone();
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        b3.wait(ctx);
        let dst = addr_b.lock().unwrap();
        for _ in 0..pool_size + 10 {
            port.send_bytes(ctx, dst, ChannelId::SYSTEM, b"x").unwrap();
            let _ = port.wait_send(ctx);
        }
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    assert_eq!(sim.get_count("bcl.sys_pool_discard"), 10);
}

// ----------------------------------------------------------------- security

#[test]
fn kernel_rejects_forged_buffer_pointer() {
    let cluster = ClusterSpec::dawning3000(2).build();
    let sim = cluster.sim.clone();
    cluster.spawn_process(0, "attacker", |ctx, env| {
        let port = env.open_port(ctx);
        let dst = suca_bcl::ProcAddr {
            node: suca_os::NodeId(1),
            port: suca_bcl::PortId(0),
        };
        // A pointer into unmapped space: must be refused by the kernel
        // module, not crash anything.
        let err = port
            .send(
                ctx,
                dst,
                ChannelId::SYSTEM,
                suca_mem::VirtAddr(0xDEAD_BEEF),
                100,
            )
            .unwrap_err();
        assert!(matches!(err, BclError::BadBuffer { .. }), "got {err:?}");
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
}

#[test]
fn kernel_rejects_bad_destination_and_channel() {
    let cluster = ClusterSpec::dawning3000(2).build();
    let sim = cluster.sim.clone();
    cluster.spawn_process(0, "p", |ctx, env| {
        let port = env.open_port(ctx);
        let buf = port.alloc_buffer(64).unwrap();
        let bad_node = suca_bcl::ProcAddr {
            node: suca_os::NodeId(99),
            port: suca_bcl::PortId(0),
        };
        assert!(matches!(
            port.send(ctx, bad_node, ChannelId::SYSTEM, buf, 64),
            Err(BclError::BadNode(_))
        ));
        let dst = suca_bcl::ProcAddr {
            node: suca_os::NodeId(1),
            port: suca_bcl::PortId(0),
        };
        assert!(matches!(
            port.send(ctx, dst, ChannelId::normal(9999), buf, 64),
            Err(BclError::BadChannel(_))
        ));
        // Oversized system-channel message.
        assert!(matches!(
            port.send(ctx, dst, ChannelId::SYSTEM, buf, 64 * 1024),
            Err(BclError::TooBigForSystemChannel { .. })
        ));
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
}

#[test]
fn one_port_per_process_enforced() {
    let cluster = ClusterSpec::dawning3000(1).build();
    let sim = cluster.sim.clone();
    cluster.spawn_process(0, "greedy", |ctx, env| {
        let _port = env.open_port(ctx);
        match BclPort::open(ctx, &env.node.bcl, &env.proc) {
            Err(BclError::PortAlreadyOpen(_)) => {}
            Err(other) => panic!("wrong error: {other:?}"),
            Ok(_) => panic!("second port must be refused"),
        }
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
}

#[test]
fn dead_process_requests_are_refused() {
    let cluster = ClusterSpec::dawning3000(1).build();
    let sim = cluster.sim.clone();
    let node = cluster.nodes[0].clone();
    cluster.spawn_process(0, "zombie", move |ctx, env| {
        let port = env.open_port(ctx);
        // Kill the process behind the kernel's back, then try to use the
        // port: the PID check fires.
        node.os.exit_process(env.proc.pid);
        let buf = port.alloc_buffer(8).unwrap();
        let dst = port.addr();
        let err = port.send(
            ctx,
            suca_bcl::ProcAddr {
                node: suca_os::NodeId(0),
                port: dst.port,
            },
            ChannelId::SYSTEM,
            buf,
            8,
        );
        // Intra-node path doesn't trap; force the inter-node path via a
        // different op that always traps:
        let err2 = port.post_recv(ctx, 0, 64);
        assert!(err.is_ok(), "intra path has no kernel check by design");
        assert!(matches!(err2, Err(BclError::DeadProcess(_))), "{err2:?}");
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
}

// --------------------------------------------------------------------- RMA

#[test]
fn rma_write_and_read_roundtrip() {
    let cluster = ClusterSpec::dawning3000(2).build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr_b: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    let window: Arc<Mutex<Option<suca_mem::VirtAddr>>> = Arc::new(Mutex::new(None));
    let done = SimBarrier::new(&sim, 2);

    let ab = addr_b.clone();
    let b2 = barrier.clone();
    let d2 = done.clone();
    let w2 = window.clone();
    cluster.spawn_process(1, "target", move |ctx, env| {
        let port = env.open_port(ctx);
        *ab.lock() = Some(port.addr());
        let win = port.bind_open(ctx, 0, 8192).unwrap();
        // Preload the second half with a known pattern for the read test.
        port.write_buffer(win.add(4096), &pattern(4096, 42))
            .unwrap();
        *w2.lock() = Some(win);
        b2.wait(ctx);
        d2.wait(ctx); // stay alive until the initiator finished
        let got = port.read_buffer(win, 2000).unwrap();
        assert_eq!(got, pattern(2000, 5), "RMA write did not land");
    });
    let b3 = barrier.clone();
    let d3 = done.clone();
    cluster.spawn_process(0, "initiator", move |ctx, env| {
        let port = env.open_port(ctx);
        b3.wait(ctx);
        let dst = addr_b.lock().unwrap();
        // One-sided write into the window.
        let src = port.alloc_buffer(2000).unwrap();
        port.write_buffer(src, &pattern(2000, 5)).unwrap();
        let wid = port.rma_write(ctx, dst, 0, 0, src, 2000).unwrap();
        let ev = port.wait_send(ctx);
        assert_eq!((ev.msg_id, ev.status), (wid, SendStatus::Ok));
        // One-sided read of the preloaded second half.
        let into = port.alloc_buffer(4096).unwrap();
        let rid = port.rma_read(ctx, dst, 0, 4096, into, 4096).unwrap();
        let ev = port.wait_send(ctx);
        assert_eq!((ev.msg_id, ev.status), (rid, SendStatus::Ok));
        assert_eq!(port.read_buffer(into, 4096).unwrap(), pattern(4096, 42));
        d3.wait(ctx);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
}

#[test]
fn rma_out_of_bounds_read_fails_with_rejected_event() {
    let cluster = ClusterSpec::dawning3000(2).build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr_b: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    let done = SimBarrier::new(&sim, 2);

    let ab = addr_b.clone();
    let b2 = barrier.clone();
    let d2 = done.clone();
    cluster.spawn_process(1, "target", move |ctx, env| {
        let port = env.open_port(ctx);
        *ab.lock() = Some(port.addr());
        port.bind_open(ctx, 0, 1024).unwrap();
        b2.wait(ctx);
        d2.wait(ctx);
    });
    let b3 = barrier.clone();
    let d3 = done.clone();
    cluster.spawn_process(0, "initiator", move |ctx, env| {
        let port = env.open_port(ctx);
        b3.wait(ctx);
        let dst = addr_b.lock().unwrap();
        let into = port.alloc_buffer(4096).unwrap();
        // Read beyond the 1 KB window: NIC-side bounds check refuses.
        let rid = port.rma_read(ctx, dst, 0, 512, into, 4096).unwrap();
        let ev = port.wait_send(ctx);
        assert_eq!((ev.msg_id, ev.status), (rid, SendStatus::Rejected));
        d3.wait(ctx);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    assert_eq!(sim.get_count("bcl.rma_oob"), 1);
}

// ----------------------------------------------------------------- table 1

#[test]
fn critical_path_has_one_trap_and_zero_interrupts() {
    let cluster = ClusterSpec::dawning3000(2).build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr_b: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));

    let ab = addr_b.clone();
    let b2 = barrier.clone();
    cluster.spawn_process(1, "rx", move |ctx, env| {
        let port = env.open_port(ctx);
        *ab.lock() = Some(port.addr());
        b2.wait(ctx);
        let _ = port.wait_recv(ctx);
    });
    let b3 = barrier.clone();
    let traps = Arc::new(Mutex::new((0u64, 0u64)));
    let t2 = traps.clone();
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        b3.wait(ctx);
        let dst = addr_b.lock().unwrap();
        let before = ctx.sim().get_count("os.traps");
        port.send_bytes(ctx, dst, ChannelId::SYSTEM, b"hi").unwrap();
        let after = ctx.sim().get_count("os.traps");
        *t2.lock() = (before, after);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    let (before, after) = *traps.lock();
    assert_eq!(after - before, 1, "exactly one trap on the send path");
    assert_eq!(sim.get_count("os.interrupts"), 0, "BCL never interrupts");
}

// ------------------------------------------------------------ both fabrics

#[test]
fn same_application_runs_on_myrinet_and_mesh() {
    for spec in [
        ClusterSpec::dawning3000(4),
        ClusterSpec::dawning3000_mesh(4),
    ] {
        let name = match &spec.san {
            suca_cluster::SanKind::Myrinet(_) => "myrinet",
            suca_cluster::SanKind::Mesh(_) => "mesh",
        };
        let cluster = spec.build();
        let sim = cluster.sim.clone();
        let barrier = SimBarrier::new(&sim, 4);
        let addrs: Arc<Mutex<Vec<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(Vec::new()));
        let received = Arc::new(Mutex::new(0u32));
        // Every node sends to every other node over the system channel —
        // identical application code for both SANs.
        for n in 0..4u32 {
            let barrier = barrier.clone();
            let addrs = addrs.clone();
            let received = received.clone();
            cluster.spawn_process(n, format!("p{n}"), move |ctx, env| {
                let port = env.open_port(ctx);
                addrs.lock().push(port.addr());
                barrier.wait(ctx);
                let peers: Vec<_> = addrs
                    .lock()
                    .iter()
                    .copied()
                    .filter(|a| *a != port.addr())
                    .collect();
                for peer in peers {
                    port.send_bytes(ctx, peer, ChannelId::SYSTEM, &n.to_le_bytes())
                        .unwrap();
                }
                for _ in 0..3 {
                    let ev = port.wait_recv(ctx);
                    let _ = port.recv_bytes(ctx, &ev).unwrap();
                    *received.lock() += 1;
                }
            });
        }
        assert_eq!(sim.run(), RunOutcome::Completed, "{name} stuck");
        assert_eq!(*received.lock(), 12, "{name} lost messages");
    }
}
