//! End-to-end determinism for the mixed multi-tenant workload.
//!
//! The `mixed_slo` harness runs three tenants (KV, pub-sub log, staged
//! pipeline) concurrently on a 32-node dual-rail cluster. Its contract is
//! the same one `engine_shard_determinism` pins for the single-tenant
//! harnesses: the event-engine shard count is invisible in the results,
//! so the SLO report (with its per-tenant sections), the health report
//! (per-tenant burn-rate rules), the metrics snapshot, and the telemetry
//! timeseries must all be byte-identical between the production shape
//! (one shard per node), the single-queue reference, an odd in-between
//! shard count, and a plain rerun — on both fabrics.
//!
//! The workload knobs are shrunk from harness scale to keep the shard
//! sweep fast; the topology (32 nodes, dual rail, 8 servers) is the real
//! one.

use suca_bench::mixed::{assert_base_invariants, run_mixed, MixedCfg, SEED};

/// Byte artifacts of one mixed run.
struct RunBytes {
    slo: String,
    health: String,
    metrics: String,
    timeseries: String,
}

fn run_bytes(fabric: &str, shards: Option<usize>) -> RunBytes {
    let cfg = MixedCfg {
        engine_shards: shards,
        kv_users_per_client: 8,
        kv_ops_per_user: 2,
        pub_events: 10,
        pipe_jobs: 1,
        ..MixedCfg::default()
    };
    let out = run_mixed("e2e", fabric, &cfg);
    assert_base_invariants(&format!("e2e/{fabric}/shards={shards:?}"), &out);
    for t in &out.report.tenants {
        assert!(
            t.issued > 0 && t.completed == t.issued,
            "e2e/{fabric}: tenant {} must run clean at toy scale",
            t.tenant
        );
    }
    RunBytes {
        slo: out.report.to_json(),
        health: out
            .cluster
            .sim
            .health()
            .report("mixed_e2e", fabric, SEED, &[])
            .to_json(),
        metrics: out.cluster.metrics_snapshot().to_json(),
        timeseries: out.cluster.sim.timeseries().snapshot().to_json(),
    }
}

fn assert_bytes_equal(reference: &RunBytes, got: &RunBytes, what: &str) {
    assert_eq!(reference.slo, got.slo, "{what}: SLO report diverged");
    assert_eq!(
        reference.health, got.health,
        "{what}: health report diverged"
    );
    assert_eq!(reference.metrics, got.metrics, "{what}: metrics diverged");
    assert_eq!(
        reference.timeseries, got.timeseries,
        "{what}: timeseries diverged"
    );
}

fn sweep(fabric: &str) {
    let reference = run_bytes(fabric, Some(1));
    assert!(
        reference.slo.contains("\"tenant\""),
        "{fabric}: per-tenant sections missing from the SLO report"
    );
    let rerun = run_bytes(fabric, Some(1));
    assert_bytes_equal(&reference, &rerun, &format!("{fabric} rerun"));
    for shards in [Some(3), None] {
        let got = run_bytes(fabric, shards);
        assert_bytes_equal(&reference, &got, &format!("{fabric} shards={shards:?}"));
    }
}

/// Myrinet-primary rails: shard counts 1 (reference), 3, and per-node,
/// plus a rerun, all byte-identical.
#[test]
fn mixed_reports_identical_across_shard_counts_myrinet() {
    sweep("myrinet");
}

/// Mesh-primary rails: same sweep.
#[test]
fn mixed_reports_identical_across_shard_counts_mesh() {
    sweep("mesh");
}
