//! Cluster construction.

use std::sync::Arc;

use suca_bcl::BclConfig;
use suca_mesh::{Mesh, MeshConfig};
use suca_myrinet::{Fabric, Myrinet, MyrinetConfig};
use suca_os::{NodeId, OsCostModel, OsPersonality};
use suca_sim::{ActorCtx, ActorId, HealthRule, Sim, TelemetryConfig};

use crate::node::{ClusterNode, ProcessEnv};

/// Which system-area network to build.
#[derive(Clone, Debug)]
pub enum SanKind {
    /// Myrinet (the default on DAWNING-3000).
    Myrinet(MyrinetConfig),
    /// The custom nwrc 2-D mesh.
    Mesh(MeshConfig),
}

/// Everything needed to stand up a cluster.
///
/// ```
/// use suca_cluster::ClusterSpec;
/// use suca_sim::RunOutcome;
///
/// let cluster = ClusterSpec::dawning3000(2).build();
/// cluster.spawn_process(0, "hello", |ctx, env| {
///     let port = env.open_port(ctx); // one kernel trap
///     assert_eq!(port.addr().node.0, 0);
/// });
/// assert_eq!(cluster.sim.run(), RunOutcome::Completed);
/// ```
#[derive(Clone)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: u32,
    /// Network choice.
    pub san: SanKind,
    /// Optional second rail: every NIC also attaches to this fabric and
    /// fails over to it when the MCP declares a path dead. `None` (the
    /// default) keeps the classic single-rail machine byte-identical.
    pub san2: Option<SanKind>,
    /// Host OS flavor.
    pub personality: OsPersonality,
    /// Kernel cost model.
    pub os_costs: OsCostModel,
    /// BCL configuration.
    pub bcl: BclConfig,
    /// Physical memory per node.
    pub mem_bytes: u64,
    /// CPUs per node.
    pub cpus: u32,
    /// Master RNG seed.
    pub seed: u64,
    /// Telemetry sampling period and stall-watchdog thresholds. Armed in
    /// [`ClusterSpec::build`] for every cluster, so all harnesses get the
    /// sampler and the watchdog without opting in.
    pub telemetry: TelemetryConfig,
    /// Event-queue shard count. `None` (the default) means one shard per
    /// node, which is the intended production shape; `Some(1)` is the
    /// single-queue reference mode. Shard count never changes results —
    /// dispatch order is the strict global `(time, seq)` order either way —
    /// only scheduling throughput. The `SUCA_SIM_SINGLE_QUEUE` environment
    /// variable forces 1 shard regardless of this field (reference runs).
    pub engine_shards: Option<usize>,
    /// Enable the engine self-profiler ([`Sim::set_profiling`]) for this
    /// run. Off by default: profiled runs register extra `sim.prof.*`
    /// telemetry probes, which unprofiled determinism comparisons must not
    /// see.
    pub profile: bool,
    /// Deterministic trace sampling rate in parts-per-million, applied to
    /// the per-message tracer at build time (`None` = record everything).
    /// Sampling is by hash of the chain's `TraceId`, so every hop of an
    /// admitted message is kept on every node and the sampled population is
    /// identical for a fixed seed at any shard count.
    pub trace_sample_ppm: Option<u32>,
    /// Health rule set ([`Sim::install_health`]). `None` (the default)
    /// leaves the health engine unarmed and registers nothing, keeping
    /// unmonitored harnesses' snapshots byte-identical.
    pub health: Option<Vec<HealthRule>>,
}

impl ClusterSpec {
    /// The DAWNING-3000 configuration: AIX on 4-way Power3 SMPs over
    /// Myrinet, with the paper-calibrated cost models.
    pub fn dawning3000(nodes: u32) -> ClusterSpec {
        ClusterSpec {
            nodes,
            san: SanKind::Myrinet(MyrinetConfig::dawning3000()),
            san2: None,
            personality: OsPersonality::AIX,
            os_costs: OsCostModel::aix_power3(),
            bcl: BclConfig::dawning3000(),
            mem_bytes: 64 << 20, // plenty for the experiments; real nodes had GBs
            cpus: 4,
            seed: 0xDA3000,
            telemetry: TelemetryConfig::default(),
            engine_shards: None,
            profile: false,
            trace_sample_ppm: None,
            health: None,
        }
    }

    /// Same machine, nwrc 2-D mesh SAN.
    pub fn dawning3000_mesh(nodes: u32) -> ClusterSpec {
        ClusterSpec {
            san: SanKind::Mesh(MeshConfig::dawning3000()),
            ..Self::dawning3000(nodes)
        }
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the SAN.
    pub fn with_san(mut self, san: SanKind) -> Self {
        self.san = san;
        self
    }

    /// Attach a second rail (dual-fabric nodes for chaos/failover runs).
    /// Use a *different* fabric kind than the primary — per-link telemetry
    /// probe names are derived from link labels, and two fabrics of the same
    /// kind would collide. Heterogeneous rails are also the paper's story:
    /// the same binary runs over Myrinet or the nwrc mesh.
    pub fn with_second_san(mut self, san: SanKind) -> Self {
        self.san2 = Some(san);
        self
    }

    /// Override the BCL config (for ablations).
    pub fn with_bcl(mut self, bcl: BclConfig) -> Self {
        self.bcl = bcl;
        self
    }

    /// Override the telemetry/watchdog configuration (fault-injection tests
    /// tighten the thresholds to trip the watchdog within a short run).
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Override the event-queue shard count (`Some(1)` = single-queue
    /// reference mode; the default is one shard per node).
    pub fn with_engine_shards(mut self, shards: Option<usize>) -> Self {
        self.engine_shards = shards;
        self
    }

    /// Enable the engine self-profiler for this run (see
    /// [`Sim::set_profiling`]).
    pub fn with_profiling(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Sample the per-message tracer at `rate_ppm` parts-per-million
    /// (deterministic by-`TraceId` hash; `1_000_000` records everything).
    /// The flight recorder stays armed either way — `TraceId::NONE` events
    /// always record.
    pub fn with_trace_sampling(mut self, rate_ppm: u32) -> Self {
        self.trace_sample_ppm = Some(rate_ppm);
        self
    }

    /// Install a health rule set for this run (see [`suca_sim::health`]).
    /// The engine arms at build time, before any traffic, so its SLO
    /// windows cover the whole run.
    pub fn with_health(mut self, rules: Vec<HealthRule>) -> Self {
        self.health = Some(rules);
        self
    }

    /// Build the cluster. Every layer (OS, kernel module, MCP, fabric, DMA
    /// engines, completion queues) registers its instruments in the run's
    /// shared [`suca_sim::Metrics`] registry, reachable afterwards via
    /// [`Cluster::metrics_snapshot`].
    pub fn build(self) -> Cluster {
        let shards = if std::env::var_os("SUCA_SIM_SINGLE_QUEUE").is_some() {
            1
        } else {
            self.engine_shards.unwrap_or(self.nodes.max(1) as usize)
        };
        let sim = Sim::new_with_shards(self.seed, shards);
        if self.profile {
            sim.set_profiling(true);
        }
        if let Some(ppm) = self.trace_sample_ppm {
            sim.msg_trace()
                .set_sampling(suca_sim::mtrace::SampleSpec::ratio_ppm(ppm).with_seed(self.seed));
        }
        let metrics = sim.metrics();
        metrics.set_meta("nodes", self.nodes.to_string());
        metrics.set_meta(
            "san",
            match &self.san {
                SanKind::Myrinet(_) => "myrinet",
                SanKind::Mesh(_) => "mesh",
            },
        );
        let build_san = |san: &SanKind| -> Arc<dyn Fabric> {
            match san {
                SanKind::Myrinet(cfg) => Myrinet::build(&sim, self.nodes, cfg.clone()),
                SanKind::Mesh(cfg) => Mesh::build_square(&sim, self.nodes, cfg.clone()),
            }
        };
        let fabric = build_san(&self.san);
        let mut rails = vec![fabric.clone()];
        if let Some(san2) = &self.san2 {
            rails.push(build_san(san2));
        }
        let nodes = (0..self.nodes)
            .map(|i| {
                ClusterNode::new(
                    &sim,
                    NodeId(i),
                    rails.clone(),
                    self.nodes,
                    self.mem_bytes,
                    self.cpus,
                    self.personality,
                    self.os_costs.clone(),
                    self.bcl.clone(),
                )
            })
            .collect();
        // Every layer has registered its probes by now; arm health (so
        // saturation rules see every probe) and then the sampler + stall
        // watchdog that drive it.
        if let Some(rules) = &self.health {
            sim.install_health(rules.clone());
        }
        sim.start_telemetry(self.telemetry.clone());
        Cluster {
            sim,
            nodes,
            fabric,
            rails,
        }
    }
}

/// A running cluster.
pub struct Cluster {
    /// The simulation.
    pub sim: Sim,
    /// All nodes, indexed by node id.
    pub nodes: Vec<Arc<ClusterNode>>,
    /// The primary SAN (rail 0).
    pub fabric: Arc<dyn Fabric>,
    /// Every rail, primary first. Single-rail clusters have one entry.
    pub rails: Vec<Arc<dyn Fabric>>,
}

impl Cluster {
    /// Spawn an application process on `node` as a simulation actor. The
    /// body receives the actor context and a [`ProcessEnv`].
    pub fn spawn_process(
        &self,
        node: u32,
        name: impl Into<String>,
        body: impl FnOnce(&mut ActorCtx, ProcessEnv) + Send + 'static,
    ) -> ActorId {
        let n = self.nodes[node as usize].clone();
        let proc = n.create_process();
        // Pin the actor's wakeups to its node's event-queue shard so a
        // process's work stays local to the shard being batch-drained.
        self.sim.spawn_pinned(node, name, move |ctx| {
            body(ctx, ProcessEnv { node: n, proc })
        })
    }

    /// Point-in-time copy of every instrument registered by any layer of
    /// this cluster; serializes to JSON for the experiment harnesses.
    pub fn metrics_snapshot(&self) -> suca_sim::MetricsSnapshot {
        self.sim.metrics_snapshot()
    }

    /// All buffered per-message trace events, merged across node rings and
    /// sorted by time (for Perfetto export and the completeness checker).
    pub fn trace_events(&self) -> Vec<suca_sim::TraceEvent> {
        self.sim.trace_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suca_sim::RunOutcome;

    #[test]
    fn builds_both_sans() {
        for spec in [
            ClusterSpec::dawning3000(4),
            ClusterSpec::dawning3000_mesh(4),
        ] {
            let c = spec.build();
            assert_eq!(c.nodes.len(), 4);
            assert_eq!(c.fabric.num_nodes(), 4);
        }
    }

    #[test]
    fn spawned_processes_run() {
        let c = ClusterSpec::dawning3000(2).build();
        c.spawn_process(0, "hello", |ctx, env| {
            assert_eq!(env.node.os.node_id.0, 0);
            let _port = env.open_port(ctx);
        });
        assert_eq!(c.sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn every_layer_registers_instruments() {
        let c = ClusterSpec::dawning3000(2).build();
        c.spawn_process(0, "noop", |ctx, env| {
            let _port = env.open_port(ctx);
        });
        assert_eq!(c.sim.run(), RunOutcome::Completed);
        let snap = c.metrics_snapshot();
        // One prefix per reporting subsystem: kernel module, OS, MCP
        // protocol + firmware, fabric links/switches, DMA engines.
        for prefix in [
            "kmod.", "os.", "bcl.", "mcp.", "fabric.", "link.", "switch.", "dma.",
        ] {
            assert!(
                snap.counters.keys().any(|k| k.starts_with(prefix)),
                "no counter registered under {prefix}"
            );
        }
        assert!(
            snap.counter_count() >= 20,
            "expected >= 20 distinct counters, got {}",
            snap.counter_count()
        );
        assert!(
            snap.gauges.contains_key("cq.recv_depth"),
            "completion-queue gauges missing"
        );
        assert_eq!(snap.meta.get("san").map(String::as_str), Some("myrinet"));
        let json = snap.to_json();
        assert!(json.contains("\"os.traps\""));
    }
}
