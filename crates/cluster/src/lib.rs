//! # suca-cluster — whole-system assembly
//!
//! Builds DAWNING-3000-shaped clusters (nodes = OS + NIC firmware + BCL
//! stack + SMP CPUs, wired to a Myrinet or nwrc-mesh SAN) and provides the
//! measurement harnesses used by the paper-reproduction benchmarks.

#![warn(missing_docs)]

pub mod builder;
pub mod harness;
pub mod node;

pub use builder::{Cluster, ClusterSpec, SanKind};
pub use harness::{
    half_bandwidth_point, measure_bandwidth, measure_one_way, two_nodes, BandwidthResult,
    LatencyResult, SimBarrier,
};
pub use node::{ClusterNode, ProcessEnv};
