//! One cluster node: SMP host + OS + NIC firmware + BCL stack.

use std::sync::Arc;

use suca_bcl::{BclConfig, BclNode, Mcp};
use suca_mem::PhysMemory;
use suca_myrinet::{Fabric, FabricNodeId};
use suca_os::{CpuSet, NodeId, NodeOs, OsCostModel, OsPersonality, OsProcess};
use suca_sim::{ActorCtx, Sim};

/// A fully assembled node.
pub struct ClusterNode {
    /// The node's OS instance.
    pub os: Arc<NodeOs>,
    /// The node's BCL stack (kernel module, MCP, intra-node hub).
    pub bcl: Arc<BclNode>,
    /// The node's SMP CPUs (4-way on DAWNING-3000).
    pub cpus: CpuSet,
}

impl ClusterNode {
    /// Assemble a node attached to every rail in `rails` at position `id`
    /// (all current harnesses pass one rail; chaos harnesses pass two).
    #[allow(clippy::too_many_arguments)] // one knob per hardware subsystem
    pub fn new(
        sim: &Sim,
        id: NodeId,
        rails: Vec<Arc<dyn Fabric>>,
        num_nodes: u32,
        mem_bytes: u64,
        n_cpus: u32,
        personality: OsPersonality,
        os_costs: OsCostModel,
        bcl_cfg: BclConfig,
    ) -> Arc<ClusterNode> {
        let mem = PhysMemory::new(mem_bytes);
        let os = NodeOs::new(sim, id, mem.clone(), personality, os_costs);
        let mcp = Mcp::new_multi_rail(sim, id, FabricNodeId(id.0), rails, mem, bcl_cfg.clone());
        let bcl = BclNode::new(sim, os.clone(), mcp, num_nodes, bcl_cfg);
        Arc::new(ClusterNode {
            os,
            bcl,
            cpus: CpuSet::new(sim, n_cpus),
        })
    }

    /// Fork a user process on this node.
    pub fn create_process(&self) -> OsProcess {
        self.os.create_process()
    }
}

/// Environment handed to a spawned application process.
pub struct ProcessEnv {
    /// The node this process runs on.
    pub node: Arc<ClusterNode>,
    /// The OS process (PID + address space).
    pub proc: OsProcess,
}

impl ProcessEnv {
    /// Open this process's BCL port (convenience).
    pub fn open_port(&self, ctx: &mut ActorCtx) -> suca_bcl::BclPort {
        suca_bcl::BclPort::open(ctx, &self.node.bcl, &self.proc)
            .expect("port open failed in application process")
    }
}
