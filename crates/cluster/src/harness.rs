//! Measurement harnesses.
//!
//! These functions run the same micro-benchmarks the paper runs on
//! DAWNING-3000 — one-way latency and bandwidth sweeps, inter- and
//! intra-node — each on a freshly built, deterministic cluster. Because the
//! simulation clock is global, one-way latency is measured directly (no
//! RTT/2 approximation).

use std::sync::Arc;

use parking_lot::Mutex;

use suca_bcl::{BclError, ChannelId};
use suca_sim::{ActorCtx, RunOutcome, Signal, Sim};

use crate::builder::{Cluster, ClusterSpec};

/// A reusable rendezvous barrier for test/benchmark actors. Crossing it
/// costs no virtual time; it only sequences setup phases.
#[derive(Clone)]
pub struct SimBarrier {
    n: u32,
    state: Arc<Mutex<(u32, u64)>>, // (arrived, generation)
    signal: Signal,
}

impl SimBarrier {
    /// Barrier for `n` participants.
    pub fn new(sim: &Sim, n: u32) -> Self {
        assert!(n > 0);
        SimBarrier {
            n,
            state: Arc::new(Mutex::new((0, 0))),
            signal: Signal::new(sim),
        }
    }

    /// Block until all `n` participants have arrived.
    pub fn wait(&self, ctx: &mut ActorCtx) {
        let gen = {
            let mut st = self.state.lock();
            let gen = st.1;
            st.0 += 1;
            if st.0 == self.n {
                st.0 = 0;
                st.1 += 1;
                self.signal.notify();
                return;
            }
            gen
        };
        let state = self.state.clone();
        self.signal.wait_until(ctx, || state.lock().1 != gen);
    }
}

/// Outcome of a latency measurement.
#[derive(Clone, Debug)]
pub struct LatencyResult {
    /// Message size in bytes.
    pub size: u64,
    /// Mean one-way latency over the measured iterations, µs.
    pub one_way_us: f64,
}

/// Measure mean one-way latency between two BCL processes.
///
/// * `src == dst` measures the intra-node shared-memory path.
/// * Sizes up to the system-buffer size use the system channel (as the
///   paper prescribes for small messages); larger sizes use a normal
///   channel re-posted each iteration.
pub fn measure_one_way(
    spec: ClusterSpec,
    src: u32,
    dst: u32,
    size: u64,
    warmup: u32,
    iters: u32,
) -> LatencyResult {
    let system_max = spec.bcl.system_pool.buffer_bytes;
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr_of_b: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    let send_times = Arc::new(Mutex::new(Vec::new()));
    let recv_times = Arc::new(Mutex::new(Vec::new()));
    let total = warmup + iters;
    let use_system = size <= system_max;
    let channel = if use_system {
        ChannelId::SYSTEM
    } else {
        ChannelId::normal(0)
    };

    // Receiver.
    {
        let barrier = barrier.clone();
        let addr_of_b = addr_of_b.clone();
        let recv_times = recv_times.clone();
        cluster.spawn_process(dst, "latency-recv", move |ctx, env| {
            let port = env.open_port(ctx);
            *addr_of_b.lock() = Some(port.addr());
            let buf = if use_system {
                None
            } else {
                Some(port.post_recv(ctx, 0, size).expect("post"))
            };
            barrier.wait(ctx);
            for _ in 0..total {
                let ev = port.wait_recv(ctx);
                recv_times.lock().push(ctx.now().as_us());
                let data = port.recv_bytes(ctx, &ev).expect("recv data");
                assert_eq!(data.len() as u64, size, "payload length corrupted");
                if let Some(addr) = buf {
                    port.post_recv_at(ctx, 0, addr, size).expect("re-post");
                }
                // Pace the sender.
                port.send_bytes(ctx, ev.src, ChannelId::SYSTEM, b"")
                    .expect("reply token");
            }
        });
    }

    // Sender.
    {
        let barrier = barrier.clone();
        let send_times = send_times.clone();
        cluster.spawn_process(src, "latency-send", move |ctx, env| {
            let port = env.open_port(ctx);
            let buf = port.alloc_buffer(size.max(1)).expect("alloc");
            port.write_buffer(buf, &vec![0xA5u8; size as usize])
                .expect("fill");
            barrier.wait(ctx);
            let dst_addr = addr_of_b.lock().expect("receiver opened first");
            for _ in 0..total {
                send_times.lock().push(ctx.now().as_us());
                port.send(ctx, dst_addr, channel, buf, size).expect("send");
                // Wait for the pacing reply before the next iteration
                // (consuming it returns its system-pool buffer).
                loop {
                    let ev = port.wait_recv(ctx);
                    let _ = port.recv_bytes(ctx, &ev).expect("consume reply");
                    if ev.len == 0 {
                        break;
                    }
                }
                // Drain send-completion events.
                while port.poll_send(ctx).is_some() {}
            }
        });
    }

    assert_eq!(sim.run(), RunOutcome::Completed, "latency harness stuck");
    let st = send_times.lock();
    let rt = recv_times.lock();
    assert_eq!(st.len() as u32, total);
    assert_eq!(rt.len() as u32, total);
    let mut sum = 0.0;
    for i in warmup as usize..total as usize {
        sum += rt[i] - st[i];
    }
    LatencyResult {
        size,
        one_way_us: sum / iters as f64,
    }
}

/// Outcome of a bandwidth measurement.
#[derive(Clone, Debug)]
pub struct BandwidthResult {
    /// Message size in bytes.
    pub size: u64,
    /// Sustained bandwidth in MB/s (decimal megabytes, as the paper uses).
    pub mb_per_sec: f64,
}

/// Measure sustained bandwidth with a stream of `count` messages of `size`
/// bytes over normal channels (`window` channels posted round-robin).
/// `src == dst` measures the intra-node path.
pub fn measure_bandwidth(
    spec: ClusterSpec,
    src: u32,
    dst: u32,
    size: u64,
    count: u32,
    window: u16,
) -> BandwidthResult {
    assert!(size > 0 && count > 0 && window > 0);
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr_of_b: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    let t0 = Arc::new(Mutex::new(0.0f64));
    let t1 = Arc::new(Mutex::new(0.0f64));
    let intra = src == dst;

    {
        let barrier = barrier.clone();
        let addr_of_b = addr_of_b.clone();
        let t1 = t1.clone();
        cluster.spawn_process(dst, "bw-recv", move |ctx, env| {
            let port = env.open_port(ctx);
            *addr_of_b.lock() = Some(port.addr());
            let mut bufs = Vec::new();
            for c in 0..window {
                bufs.push(port.post_recv(ctx, c, size).expect("post"));
            }
            barrier.wait(ctx);
            for i in 0..count {
                let ev = port.wait_recv(ctx);
                // Re-post the channel for the next lap (skip on final laps).
                let chan = ev.channel.index;
                if !intra && i + u32::from(window) < count {
                    port.post_recv_at(ctx, chan, bufs[chan as usize], size)
                        .expect("re-post");
                }
            }
            *t1.lock() = ctx.now().as_us();
        });
    }

    {
        let barrier = barrier.clone();
        let t0 = t0.clone();
        cluster.spawn_process(src, "bw-send", move |ctx, env| {
            let port = env.open_port(ctx);
            let buf = port.alloc_buffer(size).expect("alloc");
            port.write_buffer(buf, &vec![0x5Au8; size as usize])
                .expect("fill");
            barrier.wait(ctx);
            let dst_addr = addr_of_b.lock().expect("receiver first");
            // Warm the pin-down table so the stream measures steady state.
            // (One throwaway message, subtracted by starting the clock after
            // its completion event.)
            port.send(ctx, dst_addr, ChannelId::normal(0), buf, size)
                .expect("warmup send");
            let _ = port.wait_send(ctx);
            *t0.lock() = ctx.now().as_us();
            let channel_of = |i: u32| ChannelId::normal((i % u32::from(window)) as u16);
            for i in 1..count {
                loop {
                    match port.send(ctx, dst_addr, channel_of(i), buf, size) {
                        Ok(_) => break,
                        Err(BclError::RingFull) => {
                            let _ = port.wait_send(ctx);
                        }
                        Err(e) => panic!("send failed: {e}"),
                    }
                }
                while port.poll_send(ctx).is_some() {}
            }
        });
    }

    assert_eq!(sim.run(), RunOutcome::Completed, "bandwidth harness stuck");
    let start = *t0.lock();
    let end = *t1.lock();
    assert!(end > start, "no time elapsed");
    // count-1 timed messages (the warmup message started the clock).
    let bytes = size as f64 * (count - 1) as f64;
    BandwidthResult {
        size,
        mb_per_sec: bytes / (end - start),
    }
}

/// Convenience: the half-bandwidth point n₁/₂ — the message size at which
/// bandwidth reaches half its peak (paper: "the half-bandwidth is reached
/// with less than 4 KB message"). Returned as the first size in `sizes`
/// whose measured bandwidth is ≥ half of `peak`.
pub fn half_bandwidth_point(
    spec: &ClusterSpec,
    sizes: &[u64],
    peak: f64,
    count: u32,
) -> Option<u64> {
    sizes
        .iter()
        .copied()
        .find(|&s| measure_bandwidth(spec.clone(), 0, 1, s, count, 8).mb_per_sec >= peak / 2.0)
}

/// Build a default 2-node cluster and return it (tests use this a lot).
pub fn two_nodes() -> Cluster {
    ClusterSpec::dawning3000(2).build()
}
