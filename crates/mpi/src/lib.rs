//! # suca-mpi — MPI-like layer over EADI-2
//!
//! Point-to-point with MPI envelope semantics ([`Comm`]), collectives built
//! strictly from point-to-point ([`collectives`]), and typed helpers
//! ([`datatype`]). Mirrors DAWNING-3000's MPICH-on-EADI-2 stack (paper
//! Fig. 1); Table 3's MPI rows are measured through this layer.

#![warn(missing_docs)]

pub mod collectives;
pub mod comm;
pub mod datatype;
pub mod offload;

pub use comm::{Comm, Message, MpiConfig, ANY_SOURCE, ANY_TAG};
pub use datatype::{bytes_to_f64s, bytes_to_i32s, f64s_to_bytes, i32s_to_bytes, ReduceOp};
