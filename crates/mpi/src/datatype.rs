//! Typed views over byte payloads and reduction operators.
//!
//! Our MPI layer moves bytes; these helpers give the examples and
//! collectives typed access (`f64`/`i32` vectors) and elementwise reduction
//! semantics.

/// Reduction operators for numeric collectives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
    /// Elementwise product.
    Prod,
}

impl ReduceOp {
    /// Apply to a pair of values.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Prod => a * b,
        }
    }

    /// Fold `other` into `acc`, elementwise. Panics on length mismatch —
    /// ranks disagreeing on count is a collective-contract violation.
    pub fn fold(self, acc: &mut [f64], other: &[f64]) {
        assert_eq!(acc.len(), other.len(), "reduce length mismatch");
        for (a, b) in acc.iter_mut().zip(other) {
            *a = self.apply(*a, *b);
        }
    }
}

/// Serialize an `f64` slice to little-endian bytes.
pub fn f64s_to_bytes(v: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Parse little-endian bytes into `f64`s. Panics on ragged input.
pub fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    assert_eq!(b.len() % 8, 0, "ragged f64 payload");
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

/// Serialize an `i32` slice to little-endian bytes.
pub fn i32s_to_bytes(v: &[i32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Parse little-endian bytes into `i32`s. Panics on ragged input.
pub fn bytes_to_i32s(b: &[u8]) -> Vec<i32> {
    assert_eq!(b.len() % 4, 0, "ragged i32 payload");
    b.chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().expect("chunk of 4")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let v = vec![1.5, -2.25, 0.0, f64::MAX];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&v)), v);
    }

    #[test]
    fn i32_roundtrip() {
        let v = vec![1, -2, i32::MAX, i32::MIN];
        assert_eq!(bytes_to_i32s(&i32s_to_bytes(&v)), v);
    }

    #[test]
    fn ops() {
        assert_eq!(ReduceOp::Sum.apply(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(ReduceOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(ReduceOp::Prod.apply(2.0, 3.0), 6.0);
        let mut acc = vec![1.0, 5.0];
        ReduceOp::Max.fold(&mut acc, &[3.0, 2.0]);
        assert_eq!(acc, vec![3.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "reduce length mismatch")]
    fn fold_length_mismatch_panics() {
        ReduceOp::Sum.fold(&mut [1.0], &[1.0, 2.0]);
    }
}
