//! NIC-offloaded collectives: plan selection, compilation, launch.
//!
//! The host side of the tentpole path: pick an algorithm from the
//! fabric-aware [`PlanRegistry`], compile this rank's rank-space schedule
//! into execution-form [`CollStep`]s over concrete port addresses, and hand
//! it to the NIC in one `ioctl_collective` trap. The MCP's plan interpreter
//! then runs the whole collective — fan-in combining, fan-out forwarding,
//! result DMA — with no further host crossing; the initiator polls one
//! completion event (`ChainPolicy::collective()`).
//!
//! The offload decision must be identical on every rank (a rank running the
//! host algorithm while its peers wait NIC-side would wedge the job), so
//! eligibility depends only on values MPI semantics already require to
//! agree cluster-wide: the communicator size, the element count, and the
//! shared configuration.

use suca_bcl::{CollOp, CollStep, SendStatus};
use suca_coll::{CollKind, Combine, PlanRegistry};
use suca_sim::ActorCtx;

use crate::comm::Comm;
use crate::datatype::{bytes_to_f64s, f64s_to_bytes, ReduceOp};

impl From<ReduceOp> for CollOp {
    fn from(op: ReduceOp) -> CollOp {
        match op {
            ReduceOp::Sum => CollOp::Sum,
            ReduceOp::Max => CollOp::Max,
            ReduceOp::Min => CollOp::Min,
            ReduceOp::Prod => CollOp::Prod,
        }
    }
}

impl Comm {
    /// Fresh collective id. Ranks issue collectives in identical order, so
    /// independent counters agree cluster-wide.
    pub(crate) fn next_coll_id(&self) -> u32 {
        let mut id = self.coll_id.lock();
        let v = *id;
        *id = id.wrapping_add(1);
        v
    }

    /// Can this collective run on the NIC? Pure function of cluster-wide
    /// agreed values only (see module docs).
    pub(crate) fn offload_eligible(&self, bytes: u64) -> bool {
        self.cfg.offload_collectives
            && self.size() > 1
            && bytes <= self.max_coll_payload
            && bytes.is_multiple_of(8)
    }

    /// Counted protocol error on the offload path: bump `counter`, trip the
    /// flight recorder once. Never panics — callers degrade to the host
    /// reference algorithm or a local result.
    fn offload_error(&self, ctx: &ActorCtx, counter: &'static str, reason: &str) {
        ctx.sim().add_count(counter, 1);
        ctx.sim().msg_trace().dump_once(reason);
    }

    /// Launch one NIC-offloaded collective and wait for its completion.
    ///
    /// Returns the final accumulator (as `f64`s) when `result_lanes > 0`,
    /// `Some(empty)` for barrier-style calls, and `None` when the launch
    /// could not be made or the NIC rejected the run. Callers degrade to
    /// the host reference algorithm: for the *uniform* failure modes (plan
    /// validation — every rank computes the same plan and fails the same
    /// way) that fallback is collectively consistent. Per-rank failures
    /// (ring full, chaos SRAM wipe mid-run) cannot be hidden from peers by
    /// any local policy; they are counted and flight-recorded here and
    /// NIC-side, and the fallback keeps this rank live.
    pub(crate) fn offloaded_collective(
        &self,
        ctx: &mut ActorCtx,
        kind: CollKind,
        root: u32,
        op: CollOp,
        payload: &[f64],
        result_lanes: usize,
    ) -> Option<Vec<f64>> {
        let n = self.size();
        let me = self.rank();
        let bytes = (payload.len() * 8) as u64;
        let coll_id = self.next_coll_id();
        let plan = match PlanRegistry::for_fabric(self.fabric).plan(kind, n, root, bytes) {
            Ok(p) => p,
            Err(_) => {
                self.offload_error(
                    ctx,
                    "mpi.coll_plan_rejected",
                    "mpi: collective plan failed validation",
                );
                return None;
            }
        };
        let steps: Vec<CollStep> = plan.schedules[me as usize]
            .iter()
            .map(|s| CollStep {
                recv_from: s.recv_from.iter().map(|&r| self.eadi.addr_of(r)).collect(),
                send_to: s.send_to.iter().map(|&r| self.eadi.addr_of(r)).collect(),
                adopt: s.combine == Combine::Adopt,
                chunk: s.chunk,
            })
            .collect();
        let port = self.eadi.port();
        let result_len = (result_lanes * 8) as u64;
        let payload_buf = port.alloc_buffer(bytes.max(1)).ok()?;
        if bytes > 0 {
            port.write_buffer(payload_buf, &f64s_to_bytes(payload))
                .ok()?;
        }
        let result_buf = port.alloc_buffer(result_len.max(1)).ok()?;
        let msg_id = match port.collective(
            ctx,
            coll_id,
            op,
            steps,
            payload_buf,
            bytes,
            result_buf,
            result_len,
        ) {
            Ok(id) => id,
            Err(_) => {
                self.offload_error(
                    ctx,
                    "mpi.coll_launch_failed",
                    "mpi: collective descriptor rejected by the kernel",
                );
                return None;
            }
        };
        match self.eadi.wait_external(ctx, msg_id) {
            SendStatus::Ok => {}
            SendStatus::Rejected => {
                self.offload_error(
                    ctx,
                    "mpi.coll_nic_rejected",
                    "mpi: NIC rejected a collective run",
                );
                return None;
            }
        }
        ctx.sleep(self.cfg.recv_overhead);
        if result_lanes == 0 {
            return Some(Vec::new());
        }
        let raw = port.read_buffer(result_buf, result_len).ok()?;
        Some(bytes_to_f64s(&raw))
    }
}
