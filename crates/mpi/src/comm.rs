//! The MPI communicator: point-to-point over EADI-2.
//!
//! DAWNING-3000's MPI is MPICH retargeted at EADI-2 (paper Fig. 1); our
//! layer mirrors that: a thin veneer that adds MPI envelope semantics and
//! per-call overhead, delegating matching and transport to EADI. Collectives
//! live in [`crate::collectives`]: host reference algorithms built strictly
//! from point-to-point (the paper's "All other collective message passing
//! should be implemented in the higher level software") plus the
//! NIC-offloaded plan-driven path in [`crate::offload`].

use std::sync::Arc;

use suca_bcl::BclNode;
use suca_eadi::{EadiConfig, EadiEndpoint, RecvReq, SendReq, Universe};
use suca_os::OsProcess;
use suca_sim::{ActorCtx, SimDuration};

/// Wildcard source (like `MPI_ANY_SOURCE`).
pub const ANY_SOURCE: i32 = -1;
/// Wildcard tag (like `MPI_ANY_TAG`).
pub const ANY_TAG: i32 = -1;

/// Tag space reserved for collectives (user tags must be ≥ 0).
pub(crate) const COLLECTIVE_TAG_BASE: i32 = -1000;

/// MPI layer costs.
#[derive(Clone, Debug)]
pub struct MpiConfig {
    /// Per-call overhead on the sending side (envelope build, argument
    /// checks). With the EADI costs this reproduces Table 3's MPI deltas.
    pub send_overhead: SimDuration,
    /// Per-call overhead on the receiving side (status fill).
    pub recv_overhead: SimDuration,
    /// Run barrier/bcast/allreduce on the NIC's plan interpreter when the
    /// operands are eligible (see [`crate::offload`]); `false` forces the
    /// host point-to-point reference algorithms everywhere.
    pub offload_collectives: bool,
    /// EADI configuration underneath.
    pub eadi: EadiConfig,
}

impl MpiConfig {
    /// DAWNING-3000 calibration.
    pub fn dawning3000() -> MpiConfig {
        MpiConfig {
            send_overhead: SimDuration::from_us_f64(0.45),
            recv_overhead: SimDuration::from_us_f64(0.45),
            offload_collectives: true,
            eadi: EadiConfig::dawning3000(),
        }
    }
}

/// Completed receive with its envelope (like `MPI_Status` + buffer).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Sending rank.
    pub src: u32,
    /// Message tag.
    pub tag: i32,
    /// Payload bytes.
    pub data: Vec<u8>,
}

/// An MPI process's communicator handle (think `MPI_COMM_WORLD`).
pub struct Comm {
    pub(crate) eadi: EadiEndpoint,
    pub(crate) cfg: MpiConfig,
    /// Per-communicator collective sequence number (isolates successive
    /// collectives' traffic in the reserved tag space).
    pub(crate) coll_seq: parking_lot::Mutex<i32>,
    /// Fabric this rank's NIC sits on — keys collective plan selection.
    pub(crate) fabric: &'static str,
    /// Largest NIC-offloadable collective payload (whole `f64` lanes in
    /// one fragment), captured from the NIC at init.
    pub(crate) max_coll_payload: u64,
    /// Next collective id. Every rank issues collectives in the same
    /// order, so the local counter yields the same id cluster-wide.
    pub(crate) coll_id: parking_lot::Mutex<u32>,
}

impl Comm {
    /// Initialize this process's MPI world membership (`MPI_Init`): opens
    /// the BCL port, joins the universe, blocks until all ranks are in.
    pub fn init(
        ctx: &mut ActorCtx,
        node: &Arc<BclNode>,
        proc: &OsProcess,
        universe: Universe,
        rank: u32,
        cfg: MpiConfig,
    ) -> Comm {
        let eadi = EadiEndpoint::create(ctx, node, proc, universe, rank, cfg.eadi.clone());
        let max_coll_payload = (node.mcp.frag_cap().saturating_sub(4) / 8) * 8;
        Comm {
            eadi,
            cfg,
            coll_seq: parking_lot::Mutex::new(0),
            fabric: node.fabric_name(),
            max_coll_payload,
            coll_id: parking_lot::Mutex::new(1),
        }
    }

    /// This process's rank.
    pub fn rank(&self) -> u32 {
        self.eadi.rank()
    }

    /// Number of ranks.
    pub fn size(&self) -> u32 {
        self.eadi.size()
    }

    /// Sanitize a user-supplied tag. Negative user tags would collide with
    /// the reserved collective tag space and corrupt collective matching;
    /// instead of panicking mid-job we count the violation, trip the flight
    /// recorder once, and clear the sign bit so the message still flows in
    /// user space (a matching misuse on the receiver side sees the same
    /// sanitized value).
    fn sanitize_user_tag(&self, ctx: &ActorCtx, tag: i32) -> i32 {
        if tag >= 0 {
            return tag;
        }
        ctx.sim().add_count("mpi.invalid_user_tag", 1);
        ctx.sim()
            .msg_trace()
            .dump_once("mpi: negative user tag sanitized");
        tag & i32::MAX
    }

    /// Blocking standard send (`MPI_Send`).
    pub fn send(&self, ctx: &mut ActorCtx, dst: u32, tag: i32, data: &[u8]) {
        let tag = self.sanitize_user_tag(ctx, tag);
        ctx.sleep(self.cfg.send_overhead);
        self.eadi.send(ctx, dst, tag, data);
    }

    /// Non-blocking send (`MPI_Isend`).
    pub fn isend(&self, ctx: &mut ActorCtx, dst: u32, tag: i32, data: &[u8]) -> SendReq {
        let tag = self.sanitize_user_tag(ctx, tag);
        ctx.sleep(self.cfg.send_overhead);
        self.eadi.isend(ctx, dst, tag, data)
    }

    /// Complete a non-blocking send (`MPI_Wait` on a send request).
    pub fn wait_send(&self, ctx: &mut ActorCtx, req: SendReq) {
        self.eadi.wait_send(ctx, req);
    }

    /// Blocking receive (`MPI_Recv`); `ANY_SOURCE`/`ANY_TAG` wildcards.
    pub fn recv(&self, ctx: &mut ActorCtx, src: i32, tag: i32) -> Message {
        let req = self.irecv(ctx, src, tag);
        self.wait(ctx, req)
    }

    /// Non-blocking receive (`MPI_Irecv`).
    pub fn irecv(&self, ctx: &mut ActorCtx, src: i32, tag: i32) -> RecvReq {
        let src = (src >= 0).then_some(src as u32);
        let tag = (tag != ANY_TAG).then_some(tag);
        self.eadi.irecv(ctx, src, tag)
    }

    /// Complete a receive (`MPI_Wait`).
    pub fn wait(&self, ctx: &mut ActorCtx, req: RecvReq) -> Message {
        let done = self.eadi.wait(ctx, req);
        ctx.sleep(self.cfg.recv_overhead);
        Message {
            src: done.src,
            tag: done.tag,
            data: done.data,
        }
    }

    /// Combined send+receive (`MPI_Sendrecv`): posts the receive first, so
    /// symmetric exchanges cannot deadlock.
    pub fn sendrecv(
        &self,
        ctx: &mut ActorCtx,
        dst: u32,
        send_tag: i32,
        data: &[u8],
        src: i32,
        recv_tag: i32,
    ) -> Message {
        let rreq = self.irecv(ctx, src, recv_tag);
        self.send(ctx, dst, send_tag, data);
        self.wait(ctx, rreq)
    }

    /// Internal: send on the reserved collective tag space.
    pub(crate) fn send_coll(&self, ctx: &mut ActorCtx, dst: u32, coll_tag: i32, data: &[u8]) {
        ctx.sleep(self.cfg.send_overhead);
        self.eadi.send(ctx, dst, coll_tag, data);
    }

    /// Internal: receive on the reserved collective tag space.
    pub(crate) fn recv_coll(&self, ctx: &mut ActorCtx, src: u32, coll_tag: i32) -> Vec<u8> {
        let req = self.eadi.irecv(ctx, Some(src), Some(coll_tag));
        let done = self.eadi.wait(ctx, req);
        ctx.sleep(self.cfg.recv_overhead);
        done.data
    }

    /// Internal: fresh tag for one collective invocation.
    pub(crate) fn next_coll_tag(&self) -> i32 {
        let mut seq = self.coll_seq.lock();
        *seq += 1;
        // Cycle within a window to stay far from user tags.
        COLLECTIVE_TAG_BASE - (*seq % 100_000)
    }
}
