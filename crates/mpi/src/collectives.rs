//! Collective operations, built strictly on point-to-point.
//!
//! The paper: "BCL supports point to point message passing. All other
//! collective message passing should be implemented in the higher level
//! software." So these are textbook algorithms over [`Comm`] p2p calls:
//! dissemination barrier, binomial-tree broadcast/reduce, recursive
//! allreduce, linear gather/scatter, ring allgather, pairwise alltoall.

use suca_sim::ActorCtx;

use crate::comm::Comm;
use crate::datatype::{bytes_to_f64s, f64s_to_bytes, ReduceOp};

impl Comm {
    /// Dissemination barrier: ⌈log₂ n⌉ rounds, each rank sends to
    /// `(me + 2^k) mod n` and receives from `(me - 2^k) mod n`.
    pub fn barrier(&self, ctx: &mut ActorCtx) {
        let n = self.size();
        if n <= 1 {
            return;
        }
        let tag = self.next_coll_tag();
        let me = self.rank();
        let mut k = 1u32;
        while k < n {
            let to = (me + k) % n;
            let from = (me + n - k) % n;
            // Post the receive first; send; then complete — avoids deadlock
            // when rounds synchronize.
            let req = self.eadi.irecv(ctx, Some(from), Some(tag - k as i32));
            self.send_coll(ctx, to, tag - k as i32, b"");
            let _ = self.eadi.wait(ctx, req);
            k <<= 1;
        }
    }

    /// Binomial-tree broadcast from `root`.
    pub fn bcast(&self, ctx: &mut ActorCtx, root: u32, data: &mut Vec<u8>) {
        let n = self.size();
        if n <= 1 {
            return;
        }
        let tag = self.next_coll_tag();
        // Rotate ranks so the root is virtual rank 0.
        let me = (self.rank() + n - root) % n;
        if me != 0 {
            // Receive from the parent: virtual rank with the lowest set bit
            // cleared.
            let real_parent = ((me & (me - 1)) + root) % n;
            *data = self.recv_coll(ctx, real_parent, tag);
        }
        // Forward to children: set bits below my lowest set bit.
        let lowest = if me == 0 {
            n.next_power_of_two()
        } else {
            me & me.wrapping_neg()
        };
        let mut bit = 1u32;
        while bit < lowest && bit < n {
            let child = me | bit;
            if child < n && child != me {
                let real_child = (child + root) % n;
                self.send_coll(ctx, real_child, tag, data);
            }
            bit <<= 1;
        }
    }

    /// Binomial-tree reduce of `f64` vectors to `root`. Returns the result
    /// on the root, `None` elsewhere.
    pub fn reduce_f64(
        &self,
        ctx: &mut ActorCtx,
        root: u32,
        contribution: &[f64],
        op: ReduceOp,
    ) -> Option<Vec<f64>> {
        let n = self.size();
        let tag = self.next_coll_tag();
        let me = (self.rank() + n - root) % n;
        let mut acc = contribution.to_vec();
        // Receive from children (me | bit), fold; then send to parent.
        let lowest = if me == 0 {
            n.next_power_of_two()
        } else {
            me & me.wrapping_neg()
        };
        let mut bit = 1u32;
        while bit < lowest && bit < n {
            let child = me | bit;
            if child < n && child != me {
                let real_child = (child + root) % n;
                let got = bytes_to_f64s(&self.recv_coll(ctx, real_child, tag));
                op.fold(&mut acc, &got);
            }
            bit <<= 1;
        }
        if me == 0 {
            Some(acc)
        } else {
            let parent = me & (me - 1);
            let real_parent = (parent + root) % n;
            self.send_coll(ctx, real_parent, tag, &f64s_to_bytes(&acc));
            None
        }
    }

    /// Allreduce = reduce to 0 + broadcast (simple and correct; the paper's
    /// stack did the same composition at the MPI level).
    pub fn allreduce_f64(
        &self,
        ctx: &mut ActorCtx,
        contribution: &[f64],
        op: ReduceOp,
    ) -> Vec<f64> {
        let reduced = self.reduce_f64(ctx, 0, contribution, op);
        let mut bytes = reduced.map(|v| f64s_to_bytes(&v)).unwrap_or_default();
        self.bcast(ctx, 0, &mut bytes);
        bytes_to_f64s(&bytes)
    }

    /// Linear gather to `root`: returns `Some(parts by rank)` on the root.
    pub fn gather(&self, ctx: &mut ActorCtx, root: u32, data: &[u8]) -> Option<Vec<Vec<u8>>> {
        let n = self.size();
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let mut parts: Vec<Vec<u8>> = vec![Vec::new(); n as usize];
            parts[root as usize] = data.to_vec();
            for r in 0..n {
                if r != root {
                    parts[r as usize] = self.recv_coll(ctx, r, tag);
                }
            }
            Some(parts)
        } else {
            self.send_coll(ctx, root, tag, data);
            None
        }
    }

    /// Linear scatter from `root`: each rank gets its slice.
    pub fn scatter(&self, ctx: &mut ActorCtx, root: u32, parts: Option<&[Vec<u8>]>) -> Vec<u8> {
        let n = self.size();
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let parts = parts.expect("root must supply parts");
            assert_eq!(parts.len(), n as usize, "one part per rank");
            for r in 0..n {
                if r != root {
                    self.send_coll(ctx, r, tag, &parts[r as usize]);
                }
            }
            parts[root as usize].clone()
        } else {
            self.recv_coll(ctx, root, tag)
        }
    }

    /// Ring allgather: n−1 steps, each rank forwards the slice it just
    /// received.
    pub fn allgather(&self, ctx: &mut ActorCtx, data: &[u8]) -> Vec<Vec<u8>> {
        let n = self.size();
        let me = self.rank();
        let tag = self.next_coll_tag();
        let mut parts: Vec<Vec<u8>> = vec![Vec::new(); n as usize];
        parts[me as usize] = data.to_vec();
        if n == 1 {
            return parts;
        }
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let mut have = me;
        for _ in 0..n - 1 {
            let rreq = self.eadi.irecv(ctx, Some(left), Some(tag));
            self.send_coll(ctx, right, tag, &parts[have as usize]);
            let got = self.eadi.wait(ctx, rreq);
            ctx.sleep(self.cfg.recv_overhead);
            have = (have + n - 1) % n;
            parts[have as usize] = got.data;
        }
        parts
    }

    /// Pairwise-exchange alltoall: `parts[r]` goes to rank `r`; returns
    /// what every rank sent to me, indexed by source.
    pub fn alltoall(&self, ctx: &mut ActorCtx, parts: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let n = self.size();
        assert_eq!(parts.len(), n as usize);
        let me = self.rank();
        let tag = self.next_coll_tag();
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); n as usize];
        out[me as usize] = parts[me as usize].clone();
        for step in 1..n {
            let to = (me + step) % n;
            let from = (me + n - step) % n;
            let rreq = self.eadi.irecv(ctx, Some(from), Some(tag));
            self.send_coll(ctx, to, tag, &parts[to as usize]);
            let got = self.eadi.wait(ctx, rreq);
            ctx.sleep(self.cfg.recv_overhead);
            out[from as usize] = got.data;
        }
        out
    }
}
