//! Collective operations.
//!
//! The paper: "BCL supports point to point message passing. All other
//! collective message passing should be implemented in the higher level
//! software." The `*_host` functions are those textbook algorithms over
//! [`Comm`] p2p calls — dissemination barrier, binomial-tree
//! broadcast/reduce, linear gather/scatter, ring allgather, pairwise
//! alltoall — kept as reference baselines. Barrier, sized broadcast and
//! allreduce additionally have a NIC-offloaded path (plan-driven, see
//! [`crate::offload`]) used by default when the operands are eligible.

use suca_coll::CollKind;
use suca_sim::ActorCtx;

use crate::comm::Comm;
use crate::datatype::{bytes_to_f64s, f64s_to_bytes, ReduceOp};

impl Comm {
    /// Barrier. NIC-offloaded (plan-driven, zero payload) when enabled;
    /// otherwise the host dissemination algorithm.
    pub fn barrier(&self, ctx: &mut ActorCtx) {
        if self.size() <= 1 {
            return;
        }
        if self.offload_eligible(0)
            && self
                .offloaded_collective(ctx, CollKind::Barrier, 0, suca_bcl::CollOp::Sum, &[], 0)
                .is_some()
        {
            return;
        }
        self.barrier_host(ctx);
    }

    /// Dissemination barrier: ⌈log₂ n⌉ rounds, each rank sends to
    /// `(me + 2^k) mod n` and receives from `(me - 2^k) mod n`. Host
    /// reference baseline for [`Comm::barrier`].
    pub fn barrier_host(&self, ctx: &mut ActorCtx) {
        let n = self.size();
        if n <= 1 {
            return;
        }
        let tag = self.next_coll_tag();
        let me = self.rank();
        let mut k = 1u32;
        while k < n {
            let to = (me + k) % n;
            let from = (me + n - k) % n;
            // Post the receive first; send; then complete — avoids deadlock
            // when rounds synchronize.
            let req = self.eadi.irecv(ctx, Some(from), Some(tag - k as i32));
            self.send_coll(ctx, to, tag - k as i32, b"");
            let _ = self.eadi.wait(ctx, req);
            k <<= 1;
        }
    }

    /// Broadcast a pre-sized `f64` buffer from `root` — every rank passes
    /// a buffer of the same length (standard MPI count semantics), which
    /// is what lets the NIC pin the result before the data arrives.
    /// NIC-offloaded when eligible; host binomial tree otherwise.
    pub fn bcast_f64(&self, ctx: &mut ActorCtx, root: u32, data: &mut [f64]) {
        let n = self.size();
        if n <= 1 {
            return;
        }
        let bytes = (data.len() * 8) as u64;
        if bytes > 0 && self.offload_eligible(bytes) {
            if let Some(out) = self.offloaded_collective(
                ctx,
                CollKind::Bcast,
                root,
                suca_bcl::CollOp::Sum,
                data,
                data.len(),
            ) {
                data.copy_from_slice(&out);
                return;
            }
        }
        let mut raw = if self.rank() == root {
            f64s_to_bytes(data)
        } else {
            Vec::new()
        };
        self.bcast_host(ctx, root, &mut raw);
        if self.rank() != root {
            data.copy_from_slice(&bytes_to_f64s(&raw));
        }
    }

    /// Broadcast a byte buffer whose length only the root knows (non-root
    /// ranks pass an empty vec and learn the size from the tree). The
    /// unknown size rules out the NIC path — the result buffer cannot be
    /// pinned up front — so this always runs the host algorithm; sized
    /// broadcasts should use [`Comm::bcast_f64`].
    pub fn bcast(&self, ctx: &mut ActorCtx, root: u32, data: &mut Vec<u8>) {
        self.bcast_host(ctx, root, data);
    }

    /// Binomial-tree broadcast from `root`. Host reference baseline.
    pub fn bcast_host(&self, ctx: &mut ActorCtx, root: u32, data: &mut Vec<u8>) {
        let n = self.size();
        if n <= 1 {
            return;
        }
        let tag = self.next_coll_tag();
        // Rotate ranks so the root is virtual rank 0.
        let me = (self.rank() + n - root) % n;
        if me != 0 {
            // Receive from the parent: virtual rank with the lowest set bit
            // cleared.
            let real_parent = ((me & (me - 1)) + root) % n;
            *data = self.recv_coll(ctx, real_parent, tag);
        }
        // Forward to children: set bits below my lowest set bit.
        let lowest = if me == 0 {
            n.next_power_of_two()
        } else {
            me & me.wrapping_neg()
        };
        let mut bit = 1u32;
        while bit < lowest && bit < n {
            let child = me | bit;
            if child < n && child != me {
                let real_child = (child + root) % n;
                self.send_coll(ctx, real_child, tag, data);
            }
            bit <<= 1;
        }
    }

    /// Binomial-tree reduce of `f64` vectors to `root`. Returns the result
    /// on the root, `None` elsewhere.
    pub fn reduce_f64(
        &self,
        ctx: &mut ActorCtx,
        root: u32,
        contribution: &[f64],
        op: ReduceOp,
    ) -> Option<Vec<f64>> {
        let n = self.size();
        let tag = self.next_coll_tag();
        let me = (self.rank() + n - root) % n;
        let mut acc = contribution.to_vec();
        // Receive from children (me | bit), fold; then send to parent.
        let lowest = if me == 0 {
            n.next_power_of_two()
        } else {
            me & me.wrapping_neg()
        };
        let mut bit = 1u32;
        while bit < lowest && bit < n {
            let child = me | bit;
            if child < n && child != me {
                let real_child = (child + root) % n;
                let got = bytes_to_f64s(&self.recv_coll(ctx, real_child, tag));
                op.fold(&mut acc, &got);
            }
            bit <<= 1;
        }
        if me == 0 {
            Some(acc)
        } else {
            let parent = me & (me - 1);
            let real_parent = (parent + root) % n;
            self.send_coll(ctx, real_parent, tag, &f64s_to_bytes(&acc));
            None
        }
    }

    /// Allreduce over `f64` vectors. NIC-offloaded (plan-driven fan-in +
    /// fan-out, algorithm picked per fabric/size) when eligible; host
    /// reference composition otherwise.
    pub fn allreduce_f64(
        &self,
        ctx: &mut ActorCtx,
        contribution: &[f64],
        op: ReduceOp,
    ) -> Vec<f64> {
        let bytes = (contribution.len() * 8) as u64;
        if self.size() > 1 && !contribution.is_empty() && self.offload_eligible(bytes) {
            if let Some(out) = self.offloaded_collective(
                ctx,
                CollKind::Allreduce,
                0,
                op.into(),
                contribution,
                contribution.len(),
            ) {
                return out;
            }
        }
        self.allreduce_f64_host(ctx, contribution, op)
    }

    /// Allreduce = reduce to 0 + broadcast (simple and correct; the paper's
    /// stack did the same composition at the MPI level). Host reference
    /// baseline for [`Comm::allreduce_f64`].
    pub fn allreduce_f64_host(
        &self,
        ctx: &mut ActorCtx,
        contribution: &[f64],
        op: ReduceOp,
    ) -> Vec<f64> {
        let reduced = self.reduce_f64(ctx, 0, contribution, op);
        let mut bytes = reduced.map(|v| f64s_to_bytes(&v)).unwrap_or_default();
        self.bcast_host(ctx, 0, &mut bytes);
        bytes_to_f64s(&bytes)
    }

    /// Linear gather to `root`: returns `Some(parts by rank)` on the root.
    pub fn gather(&self, ctx: &mut ActorCtx, root: u32, data: &[u8]) -> Option<Vec<Vec<u8>>> {
        let n = self.size();
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let mut parts: Vec<Vec<u8>> = vec![Vec::new(); n as usize];
            parts[root as usize] = data.to_vec();
            for r in 0..n {
                if r != root {
                    parts[r as usize] = self.recv_coll(ctx, r, tag);
                }
            }
            Some(parts)
        } else {
            self.send_coll(ctx, root, tag, data);
            None
        }
    }

    /// Linear scatter from `root`: each rank gets its slice.
    ///
    /// A root calling with `None` or the wrong part count is a contract
    /// violation; it is counted (`mpi.scatter_bad_parts`), trips the
    /// flight recorder, and degrades to empty slices for the missing
    /// ranks — the collective still completes on every rank.
    pub fn scatter(&self, ctx: &mut ActorCtx, root: u32, parts: Option<&[Vec<u8>]>) -> Vec<u8> {
        let n = self.size();
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let parts = parts.unwrap_or_default();
            if parts.len() != n as usize {
                ctx.sim().add_count("mpi.scatter_bad_parts", 1);
                ctx.sim()
                    .msg_trace()
                    .dump_once("mpi: scatter root part count mismatch");
            }
            let empty = Vec::new();
            for r in 0..n {
                if r != root {
                    let part = parts.get(r as usize).unwrap_or(&empty);
                    self.send_coll(ctx, r, tag, part);
                }
            }
            parts.get(root as usize).cloned().unwrap_or_default()
        } else {
            self.recv_coll(ctx, root, tag)
        }
    }

    /// Ring allgather: n−1 steps, each rank forwards the slice it just
    /// received.
    pub fn allgather(&self, ctx: &mut ActorCtx, data: &[u8]) -> Vec<Vec<u8>> {
        let n = self.size();
        let me = self.rank();
        let tag = self.next_coll_tag();
        let mut parts: Vec<Vec<u8>> = vec![Vec::new(); n as usize];
        parts[me as usize] = data.to_vec();
        if n == 1 {
            return parts;
        }
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let mut have = me;
        for _ in 0..n - 1 {
            let rreq = self.eadi.irecv(ctx, Some(left), Some(tag));
            self.send_coll(ctx, right, tag, &parts[have as usize]);
            let got = self.eadi.wait(ctx, rreq);
            ctx.sleep(self.cfg.recv_overhead);
            have = (have + n - 1) % n;
            parts[have as usize] = got.data;
        }
        parts
    }

    /// Pairwise-exchange alltoall: `parts[r]` goes to rank `r`; returns
    /// what every rank sent to me, indexed by source.
    ///
    /// A wrong part count is counted (`mpi.alltoall_bad_parts`), trips the
    /// flight recorder, and missing entries go out as empty slices so the
    /// exchange still completes.
    pub fn alltoall(&self, ctx: &mut ActorCtx, parts: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let n = self.size();
        if parts.len() != n as usize {
            ctx.sim().add_count("mpi.alltoall_bad_parts", 1);
            ctx.sim()
                .msg_trace()
                .dump_once("mpi: alltoall part count mismatch");
        }
        let me = self.rank();
        let tag = self.next_coll_tag();
        let empty = Vec::new();
        let part_for = |r: u32| parts.get(r as usize).unwrap_or(&empty);
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); n as usize];
        out[me as usize] = part_for(me).clone();
        for step in 1..n {
            let to = (me + step) % n;
            let from = (me + n - step) % n;
            let rreq = self.eadi.irecv(ctx, Some(from), Some(tag));
            self.send_coll(ctx, to, tag, part_for(to));
            let got = self.eadi.wait(ctx, rreq);
            ctx.sleep(self.cfg.recv_overhead);
            out[from as usize] = got.data;
        }
        out
    }
}
