//! MPI layer end-to-end: point-to-point semantics and every collective,
//! across varied rank counts and both placements (inter- and intra-node).

use std::sync::Arc;

use suca_cluster::ClusterSpec;
use suca_eadi::Universe;
use suca_mpi::{Comm, MpiConfig, ReduceOp, ANY_SOURCE, ANY_TAG};
use suca_sim::RunOutcome;

/// Run an MPI job: `ranks` processes round-robin over `nodes` nodes.
fn mpi_job(
    nodes: u32,
    ranks: u32,
    body: impl Fn(&mut suca_sim::ActorCtx, &Comm) + Send + Sync + 'static,
) {
    let cluster = ClusterSpec::dawning3000(nodes).build();
    let sim = cluster.sim.clone();
    let uni = Universe::new(&sim, ranks);
    let body = Arc::new(body);
    for r in 0..ranks {
        let uni = uni.clone();
        let body = body.clone();
        cluster.spawn_process(r % nodes, format!("mpi{r}"), move |ctx, env| {
            let comm = Comm::init(
                ctx,
                &env.node.bcl,
                &env.proc,
                uni,
                r,
                MpiConfig::dawning3000(),
            );
            body(ctx, &comm);
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed, "MPI job hung");
}

#[test]
fn send_recv_basic() {
    mpi_job(2, 2, |ctx, comm| {
        if comm.rank() == 0 {
            comm.send(ctx, 1, 99, b"mpi hello");
        } else {
            let m = comm.recv(ctx, 0, 99);
            assert_eq!(m.data, b"mpi hello");
            assert_eq!((m.src, m.tag), (0, 99));
        }
    });
}

#[test]
fn wildcards_work() {
    mpi_job(2, 2, |ctx, comm| {
        if comm.rank() == 0 {
            comm.send(ctx, 1, 5, b"x");
        } else {
            let m = comm.recv(ctx, ANY_SOURCE, ANY_TAG);
            assert_eq!((m.src, m.tag), (0, 5));
        }
    });
}

#[test]
fn sendrecv_symmetric_exchange_does_not_deadlock() {
    mpi_job(2, 2, |ctx, comm| {
        let me = comm.rank();
        let other = 1 - me;
        let m = comm.sendrecv(ctx, other, 7, &me.to_le_bytes(), other as i32, 7);
        assert_eq!(m.data, other.to_le_bytes());
    });
}

#[test]
fn barrier_synchronizes() {
    use parking_lot::Mutex;
    let order: Arc<Mutex<Vec<(u32, &'static str)>>> = Arc::new(Mutex::new(Vec::new()));
    let o2 = order.clone();
    mpi_job(3, 3, move |ctx, comm| {
        // Rank 2 dawdles before the barrier; nobody may pass it first.
        if comm.rank() == 2 {
            ctx.sleep(suca_sim::SimDuration::from_ms(1));
        }
        o2.lock().push((comm.rank(), "before"));
        comm.barrier(ctx);
        o2.lock().push((comm.rank(), "after"));
    });
    let log = order.lock();
    let last_before = log.iter().rposition(|e| e.1 == "before").expect("befores");
    let first_after = log.iter().position(|e| e.1 == "after").expect("afters");
    assert!(last_before < first_after, "barrier violated: {log:?}");
}

#[test]
fn bcast_from_every_root() {
    for nodes_ranks in [(2u32, 2u32), (3, 3), (4, 7)] {
        let (nodes, ranks) = nodes_ranks;
        for root in 0..ranks {
            mpi_job(nodes, ranks, move |ctx, comm| {
                let mut data = if comm.rank() == root {
                    format!("payload-from-{root}").into_bytes()
                } else {
                    Vec::new()
                };
                comm.bcast(ctx, root, &mut data);
                assert_eq!(data, format!("payload-from-{root}").into_bytes());
            });
        }
    }
}

#[test]
fn reduce_sum_is_exact() {
    mpi_job(3, 5, |ctx, comm| {
        let me = comm.rank() as f64;
        let contrib = vec![me, me * 10.0, 1.0];
        let got = comm.reduce_f64(ctx, 0, &contrib, ReduceOp::Sum);
        if comm.rank() == 0 {
            // ranks 0..5: sum = 10, sum*10 = 100, count = 5
            assert_eq!(got.expect("root gets result"), vec![10.0, 100.0, 5.0]);
        } else {
            assert!(got.is_none());
        }
    });
}

#[test]
fn allreduce_max_everywhere() {
    mpi_job(2, 4, |ctx, comm| {
        let me = comm.rank() as f64;
        let got = comm.allreduce_f64(ctx, &[me, -me], ReduceOp::Max);
        assert_eq!(got, vec![3.0, 0.0]);
    });
}

#[test]
fn gather_scatter_roundtrip() {
    mpi_job(2, 4, |ctx, comm| {
        let me = comm.rank();
        let mine = vec![me as u8; (me + 1) as usize];
        let gathered = comm.gather(ctx, 0, &mine);
        let parts = if comm.rank() == 0 {
            let parts = gathered.expect("root");
            for (r, p) in parts.iter().enumerate() {
                assert_eq!(*p, vec![r as u8; r + 1]);
            }
            Some(parts)
        } else {
            None
        };
        let back = comm.scatter(ctx, 0, parts.as_deref());
        assert_eq!(back, mine, "scatter returned the wrong slice");
    });
}

#[test]
fn allgather_ring() {
    mpi_job(3, 6, |ctx, comm| {
        let me = comm.rank();
        let parts = comm.allgather(ctx, &me.to_le_bytes());
        for (r, p) in parts.iter().enumerate() {
            assert_eq!(*p, (r as u32).to_le_bytes());
        }
    });
}

#[test]
fn alltoall_pairwise() {
    mpi_job(2, 4, |ctx, comm| {
        let me = comm.rank();
        let outgoing: Vec<Vec<u8>> = (0..4).map(|r| vec![(me * 10 + r) as u8; 3]).collect();
        let incoming = comm.alltoall(ctx, &outgoing);
        for (src, p) in incoming.iter().enumerate() {
            assert_eq!(*p, vec![(src as u32 * 10 + me) as u8; 3]);
        }
    });
}

#[test]
fn large_payload_collectives_use_rendezvous() {
    mpi_job(2, 3, |ctx, comm| {
        let mut blob = if comm.rank() == 1 {
            (0..60_000u32).map(|i| (i % 251) as u8).collect()
        } else {
            Vec::new()
        };
        comm.bcast(ctx, 1, &mut blob);
        assert_eq!(blob.len(), 60_000);
        assert_eq!(blob[12345], (12345u32 % 251) as u8);
    });
}

#[test]
fn nonblocking_overlap() {
    mpi_job(2, 2, |ctx, comm| {
        if comm.rank() == 0 {
            let r1 = comm.irecv(ctx, 1, 1);
            let r2 = comm.irecv(ctx, 1, 2);
            // Complete them out of order.
            let m2 = comm.wait(ctx, r2);
            let m1 = comm.wait(ctx, r1);
            assert_eq!(m1.data, b"one");
            assert_eq!(m2.data, b"two");
        } else {
            comm.send(ctx, 0, 1, b"one");
            comm.send(ctx, 0, 2, b"two");
        }
    });
}

#[test]
fn single_rank_collectives_are_no_ops() {
    mpi_job(1, 1, |ctx, comm| {
        comm.barrier(ctx);
        let mut data = b"solo".to_vec();
        comm.bcast(ctx, 0, &mut data);
        assert_eq!(data, b"solo");
        let red = comm.reduce_f64(ctx, 0, &[5.0], ReduceOp::Sum);
        assert_eq!(red, Some(vec![5.0]));
        assert_eq!(comm.allreduce_f64(ctx, &[2.0], ReduceOp::Prod), vec![2.0]);
        let parts = comm.allgather(ctx, b"me");
        assert_eq!(parts, vec![b"me".to_vec()]);
        let a2a = comm.alltoall(ctx, &[b"self".to_vec()]);
        assert_eq!(a2a, vec![b"self".to_vec()]);
    });
}

#[test]
fn collectives_with_empty_payloads() {
    mpi_job(2, 3, |ctx, comm| {
        let mut empty = Vec::new();
        comm.bcast(ctx, 0, &mut empty);
        assert!(empty.is_empty());
        let gathered = comm.gather(ctx, 1, b"");
        if comm.rank() == 1 {
            assert_eq!(gathered.expect("root"), vec![Vec::new(); 3]);
        }
        let red = comm.allreduce_f64(ctx, &[], ReduceOp::Sum);
        assert!(red.is_empty());
    });
}

#[test]
fn back_to_back_collectives_do_not_cross_talk() {
    // Successive collectives on fresh internal tags must not steal each
    // other's messages even when ranks enter them skewed in time.
    mpi_job(2, 4, |ctx, comm| {
        for round in 0..5u8 {
            if comm.rank() == round as u32 % 4 {
                ctx.sleep(suca_sim::SimDuration::from_us(200));
            }
            let mut v = if comm.rank() == 0 {
                vec![round; 100]
            } else {
                Vec::new()
            };
            comm.bcast(ctx, 0, &mut v);
            assert_eq!(v, vec![round; 100], "round {round} corrupted");
            let s = comm.allreduce_f64(ctx, &[1.0], ReduceOp::Sum);
            assert_eq!(s, vec![4.0]);
        }
    });
}
