//! MPI collectives over both SANs. `crates/mpi/src/collectives.rs` was
//! historically exercised only over Myrinet; the MPI layer is supposed to
//! be fabric-agnostic (the paper ports BCL to the nwrc 2-D mesh with the
//! same upper layers), so the same collective workload must produce
//! identical results on both fabrics — and every traced message must close
//! its causal chain within the BCL crossing budget (1 trap, 0 interrupts)
//! regardless of which SAN carried it.

use std::sync::Arc;

use parking_lot::Mutex;

use suca_cluster::{Cluster, ClusterSpec};
use suca_eadi::Universe;
use suca_mpi::{Comm, MpiConfig, ReduceOp};
use suca_sim::mtrace::{check_completeness, ChainPolicy};
use suca_sim::RunOutcome;

/// Per-rank transcripts: (rank, bytes), shared across actor closures.
type RankTranscripts = Vec<(u32, Vec<u8>)>;
type Transcripts = Arc<Mutex<RankTranscripts>>;

/// Run an MPI job on an explicit cluster spec (the stock helper in
/// `mpi_e2e.rs` hardcodes Myrinet); returns the cluster so the caller can
/// inspect trace chains after the run.
fn mpi_job_on(
    spec: ClusterSpec,
    nodes: u32,
    ranks: u32,
    body: impl Fn(&mut suca_sim::ActorCtx, &Comm) + Send + Sync + 'static,
) -> Cluster {
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let uni = Universe::new(&sim, ranks);
    let body = Arc::new(body);
    for r in 0..ranks {
        let uni = uni.clone();
        let body = body.clone();
        cluster.spawn_process(r % nodes, format!("mpi{r}"), move |ctx, env| {
            let comm = Comm::init(
                ctx,
                &env.node.bcl,
                &env.proc,
                uni,
                r,
                MpiConfig::dawning3000(),
            );
            body(ctx, &comm);
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed, "MPI job hung");
    cluster
}

/// Every collective once, results folded into a per-rank transcript so the
/// two fabrics can be compared byte-for-byte.
fn collective_suite(ctx: &mut suca_sim::ActorCtx, comm: &Comm) -> Vec<u8> {
    let me = comm.rank();
    let size = comm.size();
    let mut transcript = Vec::new();

    comm.barrier(ctx);

    let mut blob = if me == 1 {
        (0..4096u32).map(|i| (i % 251) as u8).collect()
    } else {
        Vec::new()
    };
    comm.bcast(ctx, 1, &mut blob);
    transcript.extend_from_slice(&blob);

    let contrib = vec![me as f64, (me * me) as f64];
    let summed = comm.allreduce_f64(ctx, &contrib, ReduceOp::Sum);
    for v in &summed {
        transcript.extend_from_slice(&v.to_le_bytes());
    }

    let red = comm.reduce_f64(ctx, 0, &[me as f64 + 1.0], ReduceOp::Prod);
    if let Some(r) = red {
        for v in &r {
            transcript.extend_from_slice(&v.to_le_bytes());
        }
    }

    let mine = vec![me as u8; (me + 1) as usize];
    let gathered = comm.gather(ctx, 0, &mine);
    let parts = gathered.inspect(|parts| {
        for p in parts {
            transcript.extend_from_slice(p);
        }
    });
    let back = comm.scatter(ctx, 0, parts.as_deref());
    assert_eq!(back, mine, "scatter returned the wrong slice");

    for p in comm.allgather(ctx, &me.to_le_bytes()) {
        transcript.extend_from_slice(&p);
    }

    let outgoing: Vec<Vec<u8>> = (0..size).map(|r| vec![(me * 16 + r) as u8; 5]).collect();
    for p in comm.alltoall(ctx, &outgoing) {
        transcript.extend_from_slice(&p);
    }

    transcript
}

#[test]
fn collectives_identical_on_myrinet_and_mesh_with_closed_chains() {
    const NODES: u32 = 4;
    const RANKS: u32 = 7; // odd count: uneven node placement on both SANs
    let mut per_fabric: Vec<(&str, RankTranscripts)> = Vec::new();

    for (name, spec) in [
        ("myrinet", ClusterSpec::dawning3000(NODES)),
        ("mesh", ClusterSpec::dawning3000_mesh(NODES)),
    ] {
        let transcripts: Transcripts = Arc::new(Mutex::new(Vec::new()));
        let t2 = transcripts.clone();
        let cluster = mpi_job_on(spec, NODES, RANKS, move |ctx, comm| {
            let transcript = collective_suite(ctx, comm);
            t2.lock().push((comm.rank(), transcript));
        });

        // Every traced message — whichever fabric carried it — must close
        // its chain within the BCL budget: 1 trap, 0 interrupts.
        let events = cluster.trace_events();
        assert!(!events.is_empty(), "{name}: no trace events recorded");
        let report = check_completeness(&events, &ChainPolicy::bcl());
        assert!(
            report.is_closed(),
            "{name}: open or over-budget chains:\n{}",
            report.violations.join("\n")
        );

        let mut ranks = Arc::into_inner(transcripts).unwrap().into_inner();
        ranks.sort_by_key(|(r, _)| *r);
        assert_eq!(ranks.len(), RANKS as usize, "{name}: missing ranks");
        per_fabric.push((name, ranks));
    }

    let (_, ref myrinet) = per_fabric[0];
    let (_, ref mesh) = per_fabric[1];
    for ((r1, t1), (r2, t2)) in myrinet.iter().zip(mesh.iter()) {
        assert_eq!(r1, r2);
        assert_eq!(
            t1, t2,
            "rank {r1}: collective results differ between fabrics"
        );
    }
}
