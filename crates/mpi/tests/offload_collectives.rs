//! NIC-offloaded collectives: correctness on both fabrics, and the
//! crossing contract — every participant of an offloaded collective pays
//! exactly one kernel trap and zero interrupts
//! (`ChainPolicy::collective()`), the fan-in/fan-out happening entirely in
//! the NIC's plan interpreter.

use std::sync::Arc;

use parking_lot::Mutex;

use suca_cluster::{Cluster, ClusterSpec};
use suca_eadi::Universe;
use suca_mpi::{Comm, MpiConfig, ReduceOp};
use suca_sim::mtrace::{check_completeness, stage, ChainPolicy};
use suca_sim::RunOutcome;

/// Per-rank transcripts: (rank, bytes), shared across actor closures.
type RankTranscripts = Vec<(u32, Vec<u8>)>;
type Transcripts = Arc<Mutex<RankTranscripts>>;

fn mpi_job_on(
    spec: ClusterSpec,
    nodes: u32,
    ranks: u32,
    cfg: MpiConfig,
    body: impl Fn(&mut suca_sim::ActorCtx, &Comm) + Send + Sync + 'static,
) -> Cluster {
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let uni = Universe::new(&sim, ranks);
    let body = Arc::new(body);
    for r in 0..ranks {
        let uni = uni.clone();
        let body = body.clone();
        let cfg = cfg.clone();
        cluster.spawn_process(r % nodes, format!("mpi{r}"), move |ctx, env| {
            let comm = Comm::init(ctx, &env.node.bcl, &env.proc, uni, r, cfg);
            body(ctx, &comm);
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed, "MPI job hung");
    cluster
}

/// Offload-eligible collectives only; returns a per-rank transcript.
fn offloaded_suite(ctx: &mut suca_sim::ActorCtx, comm: &Comm) -> Vec<u8> {
    let me = comm.rank();
    let n = comm.size();
    let mut transcript = Vec::new();

    comm.barrier(ctx);

    // Sized broadcast: every rank knows the length (MPI count semantics).
    let mut blob: Vec<f64> = if me == 2 {
        (0..32).map(|i| (i * 3) as f64).collect()
    } else {
        vec![0.0; 32]
    };
    comm.bcast_f64(ctx, 2, &mut blob);
    let expect: Vec<f64> = (0..32).map(|i| (i * 3) as f64).collect();
    assert_eq!(blob, expect, "rank {me}: bcast_f64 payload wrong");
    for v in &blob {
        transcript.extend_from_slice(&v.to_le_bytes());
    }

    let contrib = vec![me as f64 + 1.0, (me * me) as f64, -(me as f64)];
    let summed = comm.allreduce_f64(ctx, &contrib, ReduceOp::Sum);
    let expect_sum: Vec<f64> = (0..3)
        .map(|lane| {
            (0..n)
                .map(|r| match lane {
                    0 => r as f64 + 1.0,
                    1 => (r * r) as f64,
                    _ => -(r as f64),
                })
                .sum()
        })
        .collect();
    assert_eq!(summed, expect_sum, "rank {me}: allreduce sum wrong");

    let minned = comm.allreduce_f64(ctx, &[me as f64, 100.0 - me as f64], ReduceOp::Min);
    assert_eq!(minned, vec![0.0, 100.0 - (n - 1) as f64]);
    let maxed = comm.allreduce_f64(ctx, &[me as f64], ReduceOp::Max);
    assert_eq!(maxed, vec![(n - 1) as f64]);
    let prod = comm.allreduce_f64(ctx, &[2.0], ReduceOp::Prod);
    assert_eq!(prod, vec![2f64.powi(n as i32)]);
    for v in summed.iter().chain(&minned).chain(&maxed).chain(&prod) {
        transcript.extend_from_slice(&v.to_le_bytes());
    }

    comm.barrier(ctx);
    transcript
}

#[test]
fn offloaded_collectives_correct_and_one_trap_on_both_fabrics() {
    const NODES: u32 = 4;
    const RANKS: u32 = 7; // odd: co-located ranks, uneven placement
    let mut per_fabric: Vec<(&str, RankTranscripts)> = Vec::new();

    for (name, spec) in [
        ("myrinet", ClusterSpec::dawning3000(NODES)),
        ("mesh", ClusterSpec::dawning3000_mesh(NODES)),
    ] {
        let transcripts: Transcripts = Arc::new(Mutex::new(Vec::new()));
        let t2 = transcripts.clone();
        let cluster = mpi_job_on(
            spec,
            NODES,
            RANKS,
            MpiConfig::dawning3000(),
            move |ctx, comm| {
                let transcript = offloaded_suite(ctx, comm);
                t2.lock().push((comm.rank(), transcript));
            },
        );

        // The NIC path really ran: plan-interpreter stages in the trace,
        // and no offload fell back or was rejected.
        let events = cluster.trace_events();
        let posts = events
            .iter()
            .filter(|e| e.stage == stage::COLL_POST)
            .count();
        let dones = events
            .iter()
            .filter(|e| e.stage == stage::COLL_DONE)
            .count();
        let combines = events
            .iter()
            .filter(|e| e.stage == stage::COLL_COMBINE)
            .count();
        assert!(posts > 0, "{name}: no collective descriptors posted");
        assert_eq!(posts, dones, "{name}: collective runs left unfinished");
        assert!(combines > 0, "{name}: no NIC-side combining happened");
        for counter in [
            "mpi.coll_plan_rejected",
            "mpi.coll_launch_failed",
            "mpi.coll_nic_rejected",
            "mcp.protocol_errors",
        ] {
            assert_eq!(
                cluster.sim.get_count(counter),
                0,
                "{name}: {counter} tripped"
            );
        }

        // Crossing contract: this workload is collectives-only, so every
        // traced chain must close with exactly 1 trap and 0 interrupts.
        let report = check_completeness(&events, &ChainPolicy::collective());
        assert!(
            report.is_closed(),
            "{name}: open or over-budget collective chains:\n{}",
            report.violations.join("\n")
        );

        let mut ranks = Arc::into_inner(transcripts).unwrap().into_inner();
        ranks.sort_by_key(|(r, _)| *r);
        assert_eq!(ranks.len(), RANKS as usize, "{name}: missing ranks");
        per_fabric.push((name, ranks));
    }

    let (_, ref myrinet) = per_fabric[0];
    let (_, ref mesh) = per_fabric[1];
    for ((r1, t1), (r2, t2)) in myrinet.iter().zip(mesh.iter()) {
        assert_eq!(r1, r2);
        assert_eq!(t1, t2, "rank {r1}: results differ between fabrics");
    }
}

/// Forcing the host path off the NIC must give byte-identical results.
#[test]
fn offloaded_matches_host_reference() {
    const NODES: u32 = 3;
    const RANKS: u32 = 6;
    let mut runs: Vec<RankTranscripts> = Vec::new();
    for offload in [true, false] {
        let mut cfg = MpiConfig::dawning3000();
        cfg.offload_collectives = offload;
        let transcripts: Transcripts = Arc::new(Mutex::new(Vec::new()));
        let t2 = transcripts.clone();
        mpi_job_on(
            ClusterSpec::dawning3000(NODES),
            NODES,
            RANKS,
            cfg,
            move |ctx, comm| {
                let transcript = offloaded_suite(ctx, comm);
                t2.lock().push((comm.rank(), transcript));
            },
        );
        let mut ranks = Arc::into_inner(transcripts).unwrap().into_inner();
        ranks.sort_by_key(|(r, _)| *r);
        runs.push(ranks);
    }
    assert_eq!(
        runs[0], runs[1],
        "offloaded and host reference collectives disagree"
    );
}
