//! Direct tests of the BCL stack assembled by hand (no cluster crate):
//! exercises the public wiring (`Mcp::new` + `BclNode::new`), hostile
//! wire-level inputs, and NIC-level observability.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use suca_bcl::{BclNode, BclPort, ChannelId, Mcp, ProcAddr};
use suca_mem::PhysMemory;
use suca_myrinet::{Fabric, FabricNodeId, Myrinet, MyrinetConfig};
use suca_os::{NodeId, NodeOs, OsCostModel, OsPersonality};
use suca_sim::{RunOutcome, Signal, Sim, SimDuration};

fn build_pair(sim: &Sim) -> (Arc<BclNode>, Arc<BclNode>, Arc<Myrinet>) {
    let fabric = Myrinet::build(sim, 2, MyrinetConfig::dawning3000());
    let cfg = suca_bcl::BclConfig::dawning3000();
    let mut nodes = Vec::new();
    for i in 0..2u32 {
        let mem = PhysMemory::new(32 << 20);
        let os = NodeOs::new(
            sim,
            NodeId(i),
            mem.clone(),
            OsPersonality::AIX,
            OsCostModel::aix_power3(),
        );
        let mcp = Mcp::new(
            sim,
            NodeId(i),
            FabricNodeId(i),
            fabric.clone(),
            mem,
            cfg.clone(),
        );
        nodes.push(BclNode::new(sim, os, mcp, 2, cfg.clone()));
    }
    let b = nodes.pop().expect("two");
    let a = nodes.pop().expect("one");
    (a, b, fabric)
}

#[test]
fn hand_assembled_stack_round_trips() {
    let sim = Sim::new(1);
    let (na, nb, _) = build_pair(&sim);
    let ready = Signal::new(&sim);
    let addr: Arc<Mutex<Option<ProcAddr>>> = Arc::new(Mutex::new(None));

    let a2 = addr.clone();
    let r2 = ready.clone();
    let nb2 = nb.clone();
    sim.spawn("rx", move |ctx| {
        let proc = nb2.os.create_process();
        let port = BclPort::open(ctx, &nb2, &proc).expect("open");
        *a2.lock() = Some(port.addr());
        r2.notify();
        let ev = port.wait_recv(ctx);
        assert_eq!(port.recv_bytes(ctx, &ev).expect("data"), b"direct".to_vec());
    });
    let na2 = na.clone();
    sim.spawn("tx", move |ctx| {
        let proc = na2.os.create_process();
        let port = BclPort::open(ctx, &na2, &proc).expect("open");
        let addr2 = addr.clone();
        ready.wait_until(ctx, || addr2.lock().is_some());
        let dst = addr.lock().expect("set");
        port.send_bytes(ctx, dst, ChannelId::SYSTEM, b"direct")
            .expect("send");
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
}

#[test]
fn garbage_packets_on_the_wire_do_not_crash_the_firmware() {
    let sim = Sim::new(2);
    let (na, nb, fabric) = build_pair(&sim);
    let _ = (&na, &nb);
    // Inject raw garbage straight into the fabric, addressed at node 1's
    // NIC: the firmware must count it as malformed and carry on.
    for i in 0..5u8 {
        let junk = Bytes::from(vec![i; 7 + i as usize * 13]);
        fabric.inject(&sim, FabricNodeId(0), FabricNodeId(1), junk);
    }
    assert_eq!(sim.run(), RunOutcome::Completed);
    assert_eq!(sim.get_count("bcl.malformed"), 5);
}

#[test]
fn sram_high_water_reflects_staging() {
    let sim = Sim::new(3);
    let (na, nb, _) = build_pair(&sim);
    let ready = Signal::new(&sim);
    let addr: Arc<Mutex<Option<ProcAddr>>> = Arc::new(Mutex::new(None));
    let a2 = addr.clone();
    let r2 = ready.clone();
    let nb2 = nb.clone();
    sim.spawn("rx", move |ctx| {
        let proc = nb2.os.create_process();
        let port = BclPort::open(ctx, &nb2, &proc).expect("open");
        *a2.lock() = Some(port.addr());
        port.post_recv(ctx, 0, 100_000).expect("post");
        r2.notify();
        let _ = port.wait_recv(ctx);
    });
    let na2 = na.clone();
    let na3 = na.clone();
    sim.spawn("tx", move |ctx| {
        let proc = na2.os.create_process();
        let port = BclPort::open(ctx, &na2, &proc).expect("open");
        let addr2 = addr.clone();
        ready.wait_until(ctx, || addr2.lock().is_some());
        let dst = addr.lock().expect("set");
        let buf = port.alloc_buffer(100_000).expect("buf");
        port.send(ctx, dst, ChannelId::normal(0), buf, 100_000)
            .expect("send");
        let _ = port.wait_send(ctx);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    let (used, high, cap) = na3.mcp.sram_stats();
    assert_eq!(used, 0, "all staging leases returned");
    assert!(high > 0, "staging never touched SRAM");
    assert!(high <= cap);
}

#[test]
fn queue_depth_drains_to_zero() {
    let sim = Sim::new(4);
    let (na, nb, _) = build_pair(&sim);
    let ready = Signal::new(&sim);
    let addr: Arc<Mutex<Option<ProcAddr>>> = Arc::new(Mutex::new(None));
    let a2 = addr.clone();
    let r2 = ready.clone();
    let nb2 = nb.clone();
    sim.spawn("rx", move |ctx| {
        let proc = nb2.os.create_process();
        let port = BclPort::open(ctx, &nb2, &proc).expect("open");
        *a2.lock() = Some(port.addr());
        r2.notify();
        for _ in 0..6 {
            let ev = port.wait_recv(ctx);
            let _ = port.recv_bytes(ctx, &ev).expect("data");
        }
    });
    let na2 = na.clone();
    let na3 = na.clone();
    sim.spawn("tx", move |ctx| {
        let proc = na2.os.create_process();
        let port = BclPort::open(ctx, &na2, &proc).expect("open");
        let addr2 = addr.clone();
        ready.wait_until(ctx, || addr2.lock().is_some());
        let dst = addr.lock().expect("set");
        for i in 0..6u8 {
            port.send_bytes(ctx, dst, ChannelId::SYSTEM, &[i; 64])
                .expect("send");
        }
        // Queue may be nonzero immediately after posting a burst…
        ctx.sleep(SimDuration::from_ms(1));
        // …but must drain once the MCP works through it.
        assert_eq!(na2.mcp.queue_depth(), 0);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    assert_eq!(na3.mcp.queue_depth(), 0);
}
