//! BCL cost model and protocol tunables.
//!
//! Every constant is calibrated against a sentence of the paper (quoted in
//! the doc comment of each field group). The headline identities the default
//! configuration reproduces:
//!
//! * host send overhead = `lib_compose + trap_enter + copyin_dispatch +
//!   security_check + pin_lookup_hit + descriptor PIO + trap_exit`
//!   = **7.04 µs** for a 0-byte message (paper §5, Fig. 5);
//! * the kernel-resident part of that
//!   (`trap_enter + copyin_dispatch + security + pin_hit + trap_exit`)
//!   = **4.17 µs**, the paper's "extra overhead required in semi-user level
//!   communication protocol", ≈ 22 % of the 18.3 µs one-way latency;
//! * receive overhead (user-space poll, no kernel) = **1.01 µs**;
//! * send-completion poll = **0.82 µs**;
//! * steady-state per-fragment cost + wire time ⇒ **146 MB/s** peak
//!   inter-node bandwidth (91 % of the 160 MB/s link).

use suca_os::OsCostModel;
use suca_pci::PciModel;
use suca_sim::SimDuration;

/// MCP (NIC firmware) costs on the 33 MHz LANai.
#[derive(Clone, Debug)]
pub struct McpCosts {
    /// Fixed cost to start one message send: fetch the descriptor from NIC
    /// memory, set up reliable-protocol state, build the wire header.
    /// Paper: stage 4 ("transfer message from NIC to network") is about one
    /// third of the 18.3 µs total, most of it the reliable protocol.
    pub send_fixed: SimDuration,
    /// Per-fragment send processing in steady state (header stamp, window
    /// bookkeeping, DMA kick). Together with the 4 KB wire time this sets
    /// the 146 MB/s bandwidth plateau.
    pub send_per_frag: SimDuration,
    /// Per-fragment receive processing (CRC check, demux, window update).
    pub recv_per_frag: SimDuration,
    /// Processing an incoming ACK.
    pub ack_process: SimDuration,
    /// Building + injecting an ACK packet.
    pub ack_send: SimDuration,
    /// Plan-interpreter work per collective step event: combining one peer
    /// contribution into the accumulator or short-circuiting a co-located
    /// copy step. LANai-resident arithmetic over at most one fragment of
    /// payload, so it sits between the ACK costs and the per-fragment
    /// receive cost.
    pub coll_step: SimDuration,
    /// Size of the completion-event record DMA'd into the user-space event
    /// queue.
    pub event_bytes: u64,
}

/// Link-level reliability (go-back-N) tunables.
#[derive(Clone, Debug)]
pub struct ReliabilityConfig {
    /// Sender window per destination NIC, in packets.
    pub window: u32,
    /// Retransmission timeout.
    pub retransmit_timeout: SimDuration,
    /// Delay before retrying a message rejected by the receiver (normal
    /// channel not posted / system pool full).
    pub reject_retry_delay: SimDuration,
    /// Retries before a rejected message completes with an error event.
    pub max_message_retries: u32,
    /// Consecutive retransmission timeouts (no ack progress) to the same
    /// destination before the kernel declares the path dead: dual-rail
    /// nodes fail the connection over to the other rail; single-rail nodes
    /// refuse new sends to the destination while go-back-N keeps probing
    /// underneath (ack progress revives the path). `0` disables detection
    /// entirely — the calibrated DAWNING-3000 profile keeps it off so the
    /// paper-identity harnesses are untouched; chaos/fault harnesses opt in.
    pub max_path_timeouts: u32,
}

/// System-channel buffer pool (small-message FIFO, paper §2.2).
#[derive(Clone, Debug)]
pub struct SystemPoolConfig {
    /// Number of buffers in each process's pool.
    pub buffers: u32,
    /// Size of each buffer; also the largest system-channel message.
    pub buffer_bytes: u64,
}

/// Intra-node shared-memory path tunables (paper §4.2).
#[derive(Clone, Debug)]
pub struct IntraNodeConfig {
    /// Sender-side fixed overhead per message (queue entry, sequence number).
    pub send_overhead: SimDuration,
    /// Flag write + wakeup handoff between the two processes (the receive
    /// side's event-poll cost is `poll_recv`, shared with the inter-node
    /// path).
    pub handoff: SimDuration,
    /// Pipelining chunk size for large messages.
    pub chunk_bytes: u64,
    /// Ring depth (buffers per direction per process pair).
    pub ring_depth: u32,
    /// One memcpy of the pipelined pair, expressed as bandwidth. The two
    /// copies overlap on different CPUs, so end-to-end bandwidth equals one
    /// copy's rate minus per-chunk overheads ⇒ ~391 MB/s (paper Table 2,
    /// "with the affect of cache").
    pub copy_bytes_per_sec: u64,
    /// Fixed cost per chunk copy (loop setup, flag update).
    pub per_chunk_overhead: SimDuration,
}

/// Resource limits (port table sizes etc.).
#[derive(Clone, Debug)]
pub struct BclLimits {
    /// Send-request ring entries per port.
    pub send_ring: usize,
    /// Normal channels per port.
    pub normal_channels: u16,
    /// Open (RMA) channels per port.
    pub open_channels: u16,
    /// Largest message accepted by `bcl_send`.
    pub max_message_bytes: u64,
    /// Ports per node.
    pub max_ports: u16,
}

/// The full BCL configuration for one cluster.
///
/// The default calibration carries the paper's measured identities:
///
/// ```
/// let cfg = suca_bcl::BclConfig::dawning3000();
/// assert!((cfg.host_send_overhead_zero_len().as_us() - 7.04).abs() < 0.01);
/// assert!((cfg.kernel_extra().as_us() - 4.17).abs() < 0.01);
/// ```
#[derive(Clone, Debug)]
pub struct BclConfig {
    /// User-library cost to compose a send request before trapping.
    pub lib_compose: SimDuration,
    /// Kernel ioctl dispatch + copy-in of the request block.
    pub copyin_dispatch: SimDuration,
    /// Descriptor size written to the NIC by PIO: fixed words plus
    /// `words_per_segment` per scatter/gather entry (phys addr + len).
    pub descriptor_base_words: u64,
    /// Words per scatter/gather segment in the descriptor.
    pub words_per_segment: u64,
    /// Doorbell write (one word).
    pub doorbell_words: u64,
    /// User-space cost to poll/consume one receive completion event
    /// (paper: 1.01 µs, "no trapping ... makes the receiving operation much
    /// faster").
    pub poll_recv: SimDuration,
    /// User-space cost to poll/consume one send completion event
    /// (paper: 0.82 µs "to complete the sending operation").
    pub poll_send: SimDuration,
    /// NIC firmware costs.
    pub mcp: McpCosts,
    /// Reliability tunables.
    pub reliability: ReliabilityConfig,
    /// System-channel pool shape.
    pub system_pool: SystemPoolConfig,
    /// Intra-node path tunables.
    pub intra: IntraNodeConfig,
    /// Table sizes.
    pub limits: BclLimits,
    /// Host OS cost model.
    pub os: OsCostModel,
    /// PCI bus cost model.
    pub pci: PciModel,
    /// Kernel pin-down table capacity, in pages. Host-memory resident, so
    /// generously sized (the paper's scalability argument vs NIC caches).
    pub pin_table_pages: usize,
    /// NIC SRAM capacity in bytes.
    pub nic_sram_bytes: u64,
}

impl BclConfig {
    /// The DAWNING-3000 calibration (see module docs for the identities).
    pub fn dawning3000() -> Self {
        let os = OsCostModel::aix_power3();
        let pci = PciModel::dawning3000();
        BclConfig {
            lib_compose: SimDuration::from_us_f64(0.47),
            copyin_dispatch: SimDuration::from_us_f64(0.85),
            descriptor_base_words: 9,
            words_per_segment: 2,
            doorbell_words: 1,
            poll_recv: SimDuration::from_us_f64(1.01),
            poll_send: SimDuration::from_us_f64(0.82),
            mcp: McpCosts {
                send_fixed: SimDuration::from_us_f64(6.60),
                send_per_frag: SimDuration::from_us_f64(1.60),
                recv_per_frag: SimDuration::from_us_f64(1.45),
                ack_process: SimDuration::from_us_f64(0.30),
                ack_send: SimDuration::from_us_f64(0.35),
                coll_step: SimDuration::from_us_f64(0.70),
                event_bytes: 16,
            },
            reliability: ReliabilityConfig {
                window: 32,
                retransmit_timeout: SimDuration::from_us(300),
                reject_retry_delay: SimDuration::from_us(50),
                max_message_retries: 200,
                max_path_timeouts: 0,
            },
            system_pool: SystemPoolConfig {
                buffers: 64,
                buffer_bytes: 4096,
            },
            intra: IntraNodeConfig {
                send_overhead: SimDuration::from_us_f64(1.30),
                handoff: SimDuration::from_us_f64(0.39),
                chunk_bytes: 4096,
                ring_depth: 8,
                copy_bytes_per_sec: 417_000_000,
                per_chunk_overhead: SimDuration::from_us_f64(0.55),
            },
            limits: BclLimits {
                send_ring: 64,
                normal_channels: 64,
                open_channels: 16,
                max_message_bytes: 16 << 20,
                max_ports: 256,
            },
            os,
            pci,
            pin_table_pages: 65_536, // 256 MB of pinnable pages in host RAM
            nic_sram_bytes: 2 << 20, // 2 MB LANai SRAM
        }
    }

    /// PIO cost of one send descriptor with `segments` scatter/gather
    /// entries, doorbell included.
    pub fn descriptor_pio(&self, segments: u64) -> SimDuration {
        self.pci.pio_write(
            self.descriptor_base_words + self.words_per_segment * segments + self.doorbell_words,
        )
    }

    /// The kernel-resident share of the send path for a pin-hit, zero-
    /// segment send — the paper's 4.17 µs "extra overhead" of semi-user-
    /// level vs user-level (PIO excluded: both architectures pay it).
    pub fn kernel_extra(&self) -> SimDuration {
        self.os.trap_enter
            + self.copyin_dispatch
            + self.os.security_check
            + self.os.pin_lookup_hit
            + self.os.trap_exit
    }

    /// Host CPU send overhead for a 0-byte message (paper: 7.04 µs).
    pub fn host_send_overhead_zero_len(&self) -> SimDuration {
        self.lib_compose + self.kernel_extra() + self.descriptor_pio(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_identity_send_overhead_7_04us() {
        let c = BclConfig::dawning3000();
        let got = c.host_send_overhead_zero_len().as_us();
        assert!(
            (got - 7.04).abs() < 0.01,
            "0-len host send overhead = {got} us, paper says 7.04"
        );
    }

    #[test]
    fn paper_identity_kernel_extra_4_17us() {
        let c = BclConfig::dawning3000();
        let got = c.kernel_extra().as_us();
        assert!(
            (got - 4.17).abs() < 0.01,
            "kernel extra = {got} us, paper says 4.17"
        );
    }

    #[test]
    fn paper_identity_receive_poll_1_01us() {
        let c = BclConfig::dawning3000();
        assert!((c.poll_recv.as_us() - 1.01).abs() < 1e-9);
        assert!((c.poll_send.as_us() - 0.82).abs() < 1e-9);
    }

    #[test]
    fn descriptor_pio_grows_with_segments() {
        let c = BclConfig::dawning3000();
        let d0 = c.descriptor_pio(0);
        let d4 = c.descriptor_pio(4);
        assert_eq!(
            (d4 - d0).as_ns(),
            c.words_per_segment * 4 * c.pci.pio_write_word.as_ns()
        );
        // 0-segment descriptor: 10 words at 0.24 us = 2.40 us.
        assert_eq!(d0.as_ns(), 2400);
    }

    #[test]
    fn steady_state_bandwidth_is_about_146_mbps() {
        // The LANai send loop processes a fragment (send_per_frag), injects
        // it, and waits for the wire before the next one. With the fragment
        // capacity of 4096 − 32 header = 4064 data bytes per packet, that
        // period must give ~146 MB/s (paper Fig. 9 / Table 2: 91 % of the
        // 160 MB/s link).
        let c = BclConfig::dawning3000();
        let frag = 4096 - crate::wire::HEADER_BYTES as u64;
        let wire = SimDuration::for_bytes(
            frag + crate::wire::HEADER_BYTES as u64 + suca_myrinet::FRAMING_BYTES,
            160_000_000,
        );
        let period = c.mcp.send_per_frag + wire;
        let bw = frag as f64 / period.as_secs_f64() / 1e6;
        assert!(
            (bw - 146.0).abs() < 4.0,
            "steady-state bandwidth {bw:.1} MB/s; paper says 146"
        );
    }
}
