//! NIC-side collective execution types.
//!
//! `suca-coll` describes collectives as rank-space *plans*; this module
//! holds the execution-level form the kernel module writes into NIC memory:
//! a per-participant schedule over concrete [`ProcAddr`]es plus the pinned
//! payload/result scatter-gather lists. The MCP's plan interpreter (see
//! `mcp.rs`) walks the schedule entirely NIC-side — fan-in combining and
//! fan-out forwarding never cross back to the host, so a participant pays
//! exactly one initiating trap and polls one completion event
//! (`ChainPolicy::collective()` in `suca-obs`).

use suca_mem::PhysAddr;

use crate::port::{PortId, ProcAddr};

/// Reduction operator the NIC applies to arriving contributions,
/// elementwise over little-endian `f64` lanes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CollOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
    /// Elementwise product.
    Prod,
}

impl CollOp {
    /// Apply the operator to one lane.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            CollOp::Sum => a + b,
            CollOp::Min => a.min(b),
            CollOp::Max => a.max(b),
            CollOp::Prod => a * b,
        }
    }

    /// Fold `incoming` into `acc` lane by lane. `false` when the buffers
    /// disagree in length or are not whole `f64` lanes — the interpreter
    /// turns that into a counted protocol error, never a panic.
    pub fn fold_bytes(self, acc: &mut [u8], incoming: &[u8]) -> bool {
        if acc.len() != incoming.len() || !acc.len().is_multiple_of(8) {
            return false;
        }
        for (a, b) in acc.chunks_exact_mut(8).zip(incoming.chunks_exact(8)) {
            let va = f64::from_le_bytes([a[0], a[1], a[2], a[3], a[4], a[5], a[6], a[7]]);
            let vb = f64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
            a.copy_from_slice(&self.apply(va, vb).to_le_bytes());
        }
        true
    }
}

/// One step of a participant's schedule, in execution form. Semantics match
/// `suca-coll`: on *entering* the step the NIC sends its accumulator to
/// every `send_to` peer; the step completes when one contribution per
/// `recv_from` entry has arrived on the matching `(peer, chunk)` edge, each
/// folded into ([`CollOp`]) or adopted as the accumulator.
#[derive(Clone, Debug)]
pub struct CollStep {
    /// Peers whose contribution this step waits for, combined in order.
    pub recv_from: Vec<ProcAddr>,
    /// Peers the accumulator is sent to on step entry.
    pub send_to: Vec<ProcAddr>,
    /// Replace the accumulator instead of folding (fan-out half).
    pub adopt: bool,
    /// Chunk index keying contribution matching (plan `chunk`).
    pub chunk: u32,
}

/// A collective descriptor, as written into NIC memory by the kernel
/// module's `ioctl_collective` — the one host crossing of the whole
/// collective. Everything the interpreter needs is here: the schedule, the
/// pinned contribution to fetch, and the pinned buffer the finished result
/// is DMA'd back into.
#[derive(Clone, Debug)]
pub struct CollSetup {
    /// Initiating port; the completion event lands in its send queue.
    pub port: PortId,
    /// Collective id, identical on every participant (matches arrivals to
    /// runs; unique per port among in-flight collectives).
    pub coll_id: u32,
    /// Reduction operator for non-adopt receives.
    pub op: CollOp,
    /// This participant's schedule, executed in order.
    pub steps: Vec<CollStep>,
    /// Pinned segments of the local contribution.
    pub payload: Vec<(PhysAddr, u64)>,
    /// Contribution length in bytes (0 for barrier).
    pub payload_len: u64,
    /// Pinned segments the final accumulator is DMA'd into.
    pub result: Vec<(PhysAddr, u64)>,
    /// Result length in bytes; must equal the accumulator's final length.
    pub result_len: u64,
    /// Kernel-assigned message id: stamped on every wire send of this
    /// participant and on the completion event the initiator polls.
    pub msg_id: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(vals: &[f64]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn fold_bytes_applies_ops_lanewise() {
        let mut acc = b(&[1.0, 8.0]);
        assert!(CollOp::Sum.fold_bytes(&mut acc, &b(&[2.0, -3.0])));
        assert_eq!(acc, b(&[3.0, 5.0]));
        let mut acc = b(&[1.0, 8.0]);
        assert!(CollOp::Min.fold_bytes(&mut acc, &b(&[2.0, -3.0])));
        assert_eq!(acc, b(&[1.0, -3.0]));
        let mut acc = b(&[1.0, 8.0]);
        assert!(CollOp::Max.fold_bytes(&mut acc, &b(&[2.0, -3.0])));
        assert_eq!(acc, b(&[2.0, 8.0]));
        let mut acc = b(&[2.0, 8.0]);
        assert!(CollOp::Prod.fold_bytes(&mut acc, &b(&[3.0, 0.5])));
        assert_eq!(acc, b(&[6.0, 4.0]));
    }

    #[test]
    fn fold_bytes_rejects_mismatch() {
        let mut acc = b(&[1.0]);
        assert!(!CollOp::Sum.fold_bytes(&mut acc, &b(&[1.0, 2.0])));
        let mut acc = vec![0u8; 7];
        assert!(!CollOp::Sum.fold_bytes(&mut acc, &[0u8; 7]));
        // Zero-length folds (barrier) are trivially fine.
        let mut acc = Vec::new();
        assert!(CollOp::Sum.fold_bytes(&mut acc, &[]));
    }
}
