//! Port and channel identifiers, and the completion events user code polls.
//!
//! A BCL process owns exactly one **port**; `(node, port)` uniquely names a
//! process cluster-wide (paper §2.2). Each port has a send-request queue and
//! per-kind receive channels: the **system** channel (FIFO buffer pool for
//! small messages), **normal** channels (rendezvous: a posted user buffer),
//! and **open** channels (RMA windows).

use suca_os::NodeId;

/// Port number on a node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PortId(pub u16);

/// Cluster-wide process address: `(node, port)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcAddr {
    /// Node number.
    pub node: NodeId,
    /// Port number on that node.
    pub port: PortId,
}

/// The three channel kinds of BCL (paper §2.2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ChannelKind {
    /// Per-process FIFO buffer pool for small messages.
    System,
    /// Rendezvous channel: receiver posts a buffer before the send.
    Normal,
    /// RMA window: a bound buffer other processes read/write one-sidedly.
    Open,
}

impl ChannelKind {
    /// Wire encoding.
    pub fn to_wire(self) -> u8 {
        match self {
            ChannelKind::System => 0,
            ChannelKind::Normal => 1,
            ChannelKind::Open => 2,
        }
    }

    /// Wire decoding.
    pub fn from_wire(b: u8) -> Option<ChannelKind> {
        match b {
            0 => Some(ChannelKind::System),
            1 => Some(ChannelKind::Normal),
            2 => Some(ChannelKind::Open),
            _ => None,
        }
    }
}

/// A channel within a port.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChannelId {
    /// Kind of channel.
    pub kind: ChannelKind,
    /// Index within the kind (always 0 for the system channel).
    pub index: u16,
}

impl ChannelId {
    /// The (single) system channel.
    pub const SYSTEM: ChannelId = ChannelId {
        kind: ChannelKind::System,
        index: 0,
    };

    /// Normal channel `i`.
    pub fn normal(i: u16) -> ChannelId {
        ChannelId {
            kind: ChannelKind::Normal,
            index: i,
        }
    }

    /// Open (RMA) channel `i`.
    pub fn open(i: u16) -> ChannelId {
        ChannelId {
            kind: ChannelKind::Open,
            index: i,
        }
    }
}

/// Where the payload of a received message lives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecvDataLoc {
    /// In system-pool buffer `index` (must be freed by consuming the data).
    SystemBuffer(u32),
    /// In the user buffer posted on this normal channel.
    Posted,
    /// Delivered through the intra-node shared-memory queue; payload
    /// already copied out into this vector.
    Inline(Vec<u8>),
}

/// A receive-completion event, DMA'd by the NIC into the user-space event
/// queue (or produced locally by the intra-node path).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecvEvent {
    /// Sender address.
    pub src: ProcAddr,
    /// Channel the message arrived on.
    pub channel: ChannelId,
    /// Message length in bytes.
    pub len: u64,
    /// Sender-assigned message id.
    pub msg_id: u32,
    /// Payload location.
    pub data: RecvDataLoc,
}

/// Why a send completed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendStatus {
    /// Message fully handed to the wire (and will be delivered by the
    /// reliability layer).
    Ok,
    /// Receiver rejected it persistently (channel never posted / pool full
    /// beyond the retry budget).
    Rejected,
}

/// A send-completion event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendEvent {
    /// Message id assigned at `bcl_send`.
    pub msg_id: u32,
    /// Outcome.
    pub status: SendStatus,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_kind_wire_roundtrip() {
        for k in [ChannelKind::System, ChannelKind::Normal, ChannelKind::Open] {
            assert_eq!(ChannelKind::from_wire(k.to_wire()), Some(k));
        }
        assert_eq!(ChannelKind::from_wire(9), None);
    }

    #[test]
    fn proc_addr_identity() {
        let a = ProcAddr {
            node: NodeId(3),
            port: PortId(7),
        };
        let b = ProcAddr {
            node: NodeId(3),
            port: PortId(7),
        };
        assert_eq!(a, b);
        assert_ne!(
            a,
            ProcAddr {
                node: NodeId(3),
                port: PortId(8)
            }
        );
    }
}
