//! The BCL kernel module.
//!
//! "BCL kernel module posts operation requests to the request queues on
//! NIC's local memory … Kernel module also implements some functional
//! operations, which need to be executed in the kernel environment. Such
//! operations include the host memory pin/unpin operation and host virtual
//! memory address to bus memory address conversion." (§4.1.1)
//!
//! Every public method here is an ioctl subcommand: it must be called from
//! inside [`suca_os::NodeOs::trap`] (the API layer does this), runs with
//! kernel privilege, performs the paper's §4.3 security checks, charges
//! kernel CPU costs to the calling actor, and finally programs the NIC by
//! PIO. This file is the "semi" of semi-user-level: it is the only place
//! where user requests touch the NIC.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use suca_mem::{PhysAddr, PinDownTable, PinLookup, VirtAddr, PAGE_SIZE};
use suca_myrinet::FabricNodeId;
use suca_os::{NodeOs, OsProcess, Pid};
use suca_sim::mtrace::{stage, TraceEvent, TraceId, TraceLayer};
use suca_sim::{ActorCtx, Counter, Gauge, SimDuration, SimTime};

use crate::coll::{CollOp, CollSetup, CollStep};
use crate::config::BclConfig;
use crate::error::BclError;
use crate::mcp::{JobKind, Mcp, SendJob};
use crate::port::{ChannelId, ChannelKind, PortId, ProcAddr};
use crate::queues::{SystemPool, UserQueues};

struct KernelPort {
    owner: Pid,
}

struct KmodState {
    pin: PinDownTable,
    ports: HashMap<u16, KernelPort>,
    next_port: u16,
    next_msg: u32,
    /// Evictions already folded into the `kmod.pin_evictions` counter; the
    /// pin table reports a lifetime total, we publish deltas.
    evictions_seen: u64,
    /// Pinned-page level last published to the shared `kmod.pinned_bytes`
    /// gauge (the cell is cluster-wide, so this module adds/subtracts
    /// deltas instead of storing absolute levels).
    pinned_pages_published: u64,
}

/// One node's BCL kernel module.
pub struct BclKmod {
    os: Arc<NodeOs>,
    cfg: BclConfig,
    mcp: Mcp,
    num_nodes: u32,
    state: Mutex<KmodState>,
    // Typed metric handles (cluster-wide totals across all nodes' modules).
    ioctls: Counter,
    security_rejects: Counter,
    pin_hits: Counter,
    pin_misses: Counter,
    pin_evictions: Counter,
    pio_descriptors: Counter,
    pinned_bytes: Gauge,
    // Interned once so per-send span recording never allocates.
    track_tx: &'static str,
}

impl BclKmod {
    /// Load the module on a node.
    pub fn new(os: Arc<NodeOs>, mcp: Mcp, num_nodes: u32, cfg: BclConfig) -> Arc<BclKmod> {
        let pin = PinDownTable::new(cfg.pin_table_pages);
        let pin_table_pages = cfg.pin_table_pages as u64;
        let metrics = os.sim().metrics();
        let track_tx = suca_sim::intern(&format!("n{}/tx", os.node_id.0));
        let kmod = Arc::new(BclKmod {
            track_tx,
            cfg,
            mcp,
            num_nodes,
            state: Mutex::new(KmodState {
                pin,
                ports: HashMap::new(),
                next_port: 0,
                next_msg: 2, // even ids: kernel-assigned; odd: intra-node lib
                evictions_seen: 0,
                pinned_pages_published: 0,
            }),
            ioctls: metrics.counter("kmod.ioctls"),
            security_rejects: metrics.counter("kmod.security_rejects"),
            pin_hits: metrics.counter("kmod.pin_hits"),
            pin_misses: metrics.counter("kmod.pin_misses"),
            pin_evictions: metrics.counter("kmod.pin_evictions"),
            pio_descriptors: metrics.counter("kmod.pio_descriptors"),
            pinned_bytes: metrics.gauge("kmod.pinned_bytes"),
            os,
        });
        // Telemetry probes: host-resident pin-down table occupancy. This is
        // the paper's scalability story made visible — pinned host memory
        // grows with the working set while NIC SRAM stays bounded.
        let sim = kmod.os.sim();
        let ts = sim.timeseries();
        let n = kmod.os.node_id.0;
        let w = Arc::downgrade(&kmod);
        ts.register(
            format!("n{n}.kmod.pinned_pages"),
            n,
            Some(pin_table_pages),
            move |_| w.upgrade().map_or(0, |k| k.state.lock().pin.len() as u64),
        );
        let w = Arc::downgrade(&kmod);
        ts.register(format!("n{n}.kmod.pinned_bytes"), n, None, move |_| {
            w.upgrade()
                .map_or(0, |k| k.state.lock().pin.len() as u64 * PAGE_SIZE)
        });
        kmod
    }

    /// The NIC firmware handle (for layers that need stats).
    pub fn mcp(&self) -> &Mcp {
        &self.mcp
    }

    /// Pin-down table statistics `(hits, misses, evictions)`.
    pub fn pin_stats(&self) -> (u64, u64, u64) {
        self.state.lock().pin.stats()
    }

    /// Pages currently cached in the pin-down table.
    pub fn pinned_pages(&self) -> usize {
        self.state.lock().pin.len()
    }

    /// Fold the pin table's current level into the shared `kmod.pinned_bytes`
    /// gauge. Delta-published: the cell aggregates every node's module.
    fn publish_pin_level(&self, st: &mut KmodState) {
        let cur = st.pin.len() as u64;
        let prev = st.pinned_pages_published;
        if cur > prev {
            self.pinned_bytes.add((cur - prev) * PAGE_SIZE);
        } else if prev > cur {
            self.pinned_bytes.sub((prev - cur) * PAGE_SIZE);
        }
        st.pinned_pages_published = cur;
    }

    // ---- shared kernel-side checks ----

    /// Record a §4.3 security-check rejection and pass the error through.
    fn reject(&self, e: BclError) -> BclError {
        self.security_rejects.inc();
        e
    }

    fn check_caller(&self, proc: &OsProcess) -> Result<(), BclError> {
        // "The parameters checked include application process ID …"
        if !self.os.is_live(proc.pid) {
            return Err(self.reject(BclError::DeadProcess(proc.pid)));
        }
        Ok(())
    }

    fn check_owner(&self, st: &KmodState, port: PortId, pid: Pid) -> Result<(), BclError> {
        match st.ports.get(&port.0) {
            Some(kp) if kp.owner == pid => Ok(()),
            Some(_) => Err(self.reject(BclError::NotPortOwner { port, pid })),
            None => Err(self.reject(BclError::BadPort(port))),
        }
    }

    fn check_buffer(&self, proc: &OsProcess, addr: VirtAddr, len: u64) -> Result<(), BclError> {
        // "… communication buffer pointer …": the range must be mapped in
        // the *caller's* space; a forged pointer fails here, in the kernel,
        // before the NIC ever sees it.
        if !proc.space.is_mapped(addr, len.max(1)) {
            return Err(self.reject(BclError::BadBuffer { addr: addr.0, len }));
        }
        Ok(())
    }

    fn check_dest(&self, dst: ProcAddr) -> Result<(), BclError> {
        // "… and communication target and so on."
        if dst.node.0 >= self.num_nodes {
            return Err(self.reject(BclError::BadNode(dst.node)));
        }
        if dst.port.0 >= self.cfg.limits.max_ports {
            return Err(self.reject(BclError::BadPort(dst.port)));
        }
        Ok(())
    }

    /// Translate + pin a user range; charges hit/miss costs to the actor
    /// and returns the physical scatter/gather list.
    fn pin_translate(
        &self,
        ctx: &mut ActorCtx,
        proc: &OsProcess,
        addr: VirtAddr,
        len: u64,
    ) -> Result<Vec<(PhysAddr, u64)>, BclError> {
        let (hit_cost, miss_cost) = {
            let mut st = self.state.lock();
            let results = st.pin.pin_range(&proc.space, addr, len)?;
            let misses = results
                .iter()
                .filter(|(_, l)| *l == PinLookup::Miss)
                .count() as u64;
            self.pin_hits.add(results.len() as u64 - misses);
            self.pin_misses.add(misses);
            // Drop the transient pin immediately: the entry stays cached
            // (evictable, LRU) so repeat sends hit — the whole point of the
            // pin-down cache. Simulated memory never swaps, so releasing
            // before DMA completion is safe here; real BCL holds the pin
            // until the completion event.
            st.pin.unpin_range(proc.space.asid(), addr, len);
            let (_, _, evictions) = st.pin.stats();
            self.pin_evictions.add(evictions - st.evictions_seen);
            st.evictions_seen = evictions;
            self.publish_pin_level(&mut st);
            (
                self.os.costs.pin_lookup_hit,
                self.os.costs.pin_miss_per_page * misses,
            )
        };
        // One table search per request plus the per-page pin cost on misses.
        let start = ctx.now();
        ctx.sim().trace_span(
            self.track_tx,
            "kernel: pin-down table lookup + translation",
            start,
            start + hit_cost + miss_cost,
        );
        ctx.sleep(hit_cost + miss_cost);
        let segs = proc.space.sg_list(addr, len)?;
        Ok(segs)
    }

    /// Charge the PIO cost of writing a send descriptor with `segments`
    /// scatter/gather entries plus the doorbell.
    fn charge_descriptor_pio(&self, ctx: &mut ActorCtx, segments: u64) {
        self.pio_descriptors.inc();
        let start = ctx.now();
        let d = self.cfg.descriptor_pio(segments);
        ctx.sim().trace_span(
            self.track_tx,
            "kernel: fill send descriptor (PIO) + doorbell",
            start,
            start + d,
        );
        ctx.sleep(d);
    }

    fn charge_checks(&self, ctx: &mut ActorCtx) {
        self.ioctls.inc();
        let start = ctx.now();
        let d = self.cfg.copyin_dispatch + self.os.costs.security_check;
        ctx.sim().trace_span(
            self.track_tx,
            "kernel: ioctl dispatch + security checks",
            start,
            start + d,
        );
        ctx.sleep(d);
    }

    // ---- ioctl subcommands (call under NodeOs::trap) ----

    /// Create a port for `proc`. The library pre-allocated the completion
    /// queues and the system-pool buffers in user space; the kernel pins
    /// the pool and registers everything on the NIC.
    pub fn ioctl_open_port(
        &self,
        ctx: &mut ActorCtx,
        proc: &OsProcess,
        queues: Arc<UserQueues>,
        pool_buffers: &[VirtAddr],
    ) -> Result<PortId, BclError> {
        self.charge_checks(ctx);
        self.check_caller(proc)?;
        {
            let st = self.state.lock();
            if st.ports.values().any(|kp| kp.owner == proc.pid) {
                // "Each process can create only one port." (§2.2)
                return Err(BclError::PortAlreadyOpen(proc.pid));
            }
            if st.ports.len() >= self.cfg.limits.max_ports as usize {
                return Err(BclError::PortTableFull);
            }
        }
        let buf_bytes = self.cfg.system_pool.buffer_bytes;
        let mut bufs = Vec::with_capacity(pool_buffers.len());
        for &addr in pool_buffers {
            self.check_buffer(proc, addr, buf_bytes)?;
            bufs.push(self.pin_translate(ctx, proc, addr, buf_bytes)?);
        }
        let port = {
            let mut st = self.state.lock();
            let id = PortId(st.next_port);
            st.next_port += 1;
            st.ports.insert(id.0, KernelPort { owner: proc.pid });
            id
        };
        // Port-init request to the NIC: queue bases, pool layout.
        self.charge_descriptor_pio(ctx, pool_buffers.len() as u64);
        self.mcp
            .register_port(port, queues, Arc::new(SystemPool::new(buf_bytes, bufs)));
        Ok(port)
    }

    /// Tear down a port and purge its pins.
    pub fn ioctl_close_port(
        &self,
        ctx: &mut ActorCtx,
        proc: &OsProcess,
        port: PortId,
    ) -> Result<(), BclError> {
        self.charge_checks(ctx);
        self.check_caller(proc)?;
        {
            let mut st = self.state.lock();
            self.check_owner(&st, port, proc.pid)?;
            st.ports.remove(&port.0);
            st.pin.purge_asid(proc.space.asid());
            self.publish_pin_level(&mut st);
        }
        self.charge_descriptor_pio(ctx, 0);
        self.mcp.unregister_port(port);
        Ok(())
    }

    /// Post a receive buffer on a normal channel ("making ready for message
    /// buffer still need switch into kernel mode", §4.1.1).
    #[allow(clippy::too_many_arguments)]
    pub fn ioctl_post_recv(
        &self,
        ctx: &mut ActorCtx,
        proc: &OsProcess,
        port: PortId,
        chan: u16,
        addr: VirtAddr,
        len: u64,
        replace: bool,
    ) -> Result<(), BclError> {
        self.charge_checks(ctx);
        self.check_caller(proc)?;
        {
            let st = self.state.lock();
            self.check_owner(&st, port, proc.pid)?;
        }
        if chan >= self.cfg.limits.normal_channels {
            return Err(self.reject(BclError::BadChannel(ChannelId::normal(chan))));
        }
        self.check_buffer(proc, addr, len)?;
        let segs = self.pin_translate(ctx, proc, addr, len)?;
        let n_segs = segs.len() as u64;
        if !self.mcp.post_normal(port, chan, segs, replace) {
            return Err(BclError::ChannelBusy(ChannelId::normal(chan)));
        }
        self.charge_descriptor_pio(ctx, n_segs);
        Ok(())
    }

    /// Bind a buffer to an open (RMA) channel.
    pub fn ioctl_bind_open(
        &self,
        ctx: &mut ActorCtx,
        proc: &OsProcess,
        port: PortId,
        chan: u16,
        addr: VirtAddr,
        len: u64,
    ) -> Result<(), BclError> {
        self.charge_checks(ctx);
        self.check_caller(proc)?;
        {
            let st = self.state.lock();
            self.check_owner(&st, port, proc.pid)?;
        }
        if chan >= self.cfg.limits.open_channels {
            return Err(self.reject(BclError::BadChannel(ChannelId::open(chan))));
        }
        self.check_buffer(proc, addr, len)?;
        let segs = self.pin_translate(ctx, proc, addr, len)?;
        let n_segs = segs.len() as u64;
        self.mcp.bind_open(port, chan, segs);
        self.charge_descriptor_pio(ctx, n_segs);
        Ok(())
    }

    /// The send ioctl — the single kernel trap on BCL's critical send path.
    #[allow(clippy::too_many_arguments)] // mirrors the ioctl request block
    pub fn ioctl_send(
        &self,
        ctx: &mut ActorCtx,
        proc: &OsProcess,
        port: PortId,
        dst: ProcAddr,
        channel: ChannelId,
        addr: VirtAddr,
        len: u64,
    ) -> Result<u32, BclError> {
        let trap_entry = ctx.now();
        self.charge_checks(ctx);
        let dispatch_done = ctx.now();
        self.check_caller(proc)?;
        {
            let st = self.state.lock();
            self.check_owner(&st, port, proc.pid)?;
        }
        self.check_dest(dst)?;
        match channel.kind {
            ChannelKind::System => {
                if len > self.cfg.system_pool.buffer_bytes {
                    return Err(self.reject(BclError::TooBigForSystemChannel {
                        len,
                        max: self.cfg.system_pool.buffer_bytes,
                    }));
                }
            }
            ChannelKind::Normal => {
                if channel.index >= self.cfg.limits.normal_channels {
                    return Err(self.reject(BclError::BadChannel(channel)));
                }
            }
            ChannelKind::Open => return Err(self.reject(BclError::BadChannel(channel))),
        }
        if len > self.cfg.limits.max_message_bytes {
            return Err(self.reject(BclError::MessageTooLong {
                len,
                max: self.cfg.limits.max_message_bytes,
            }));
        }
        if self.mcp.path_is_dead(FabricNodeId(dst.node.0)) {
            // The NIC exhausted retransmission on every rail; refusing here
            // (kernel-side, per the trust model) lets callers re-home work
            // instead of feeding a black hole.
            return Err(BclError::PathDead(dst.node));
        }
        if self.mcp.queue_depth() >= self.cfg.limits.send_ring {
            return Err(BclError::RingFull);
        }
        if len > 0 {
            self.check_buffer(proc, addr, len)?;
        }
        let segs = if len > 0 {
            self.pin_translate(ctx, proc, addr, len)?
        } else {
            // The table is consulted even for empty payloads.
            let start = ctx.now();
            ctx.sim().trace_span(
                self.track_tx,
                "kernel: pin-down table lookup + translation",
                start,
                start + self.os.costs.pin_lookup_hit,
            );
            ctx.sleep(self.os.costs.pin_lookup_hit);
            Vec::new()
        };
        let pin_done = ctx.now();
        let msg_id = self.alloc_msg_id();
        self.charge_descriptor_pio(ctx, segs.len() as u64);
        self.trace_send_trap(msg_id, trap_entry, dispatch_done, pin_done, ctx.now(), len);
        self.mcp.post_send(SendJob {
            src_port: port,
            dst_fid: FabricNodeId(dst.node.0),
            dst_port: dst.port,
            channel,
            msg_id,
            segments: segs,
            total_len: len,
            kind: JobKind::Message,
            retries: 0,
            notify_sender: true,
        });
        Ok(msg_id)
    }

    /// One-sided write into `dst`'s open channel.
    #[allow(clippy::too_many_arguments)]
    pub fn ioctl_rma_write(
        &self,
        ctx: &mut ActorCtx,
        proc: &OsProcess,
        port: PortId,
        dst: ProcAddr,
        chan: u16,
        offset: u64,
        addr: VirtAddr,
        len: u64,
    ) -> Result<u32, BclError> {
        let trap_entry = ctx.now();
        self.charge_checks(ctx);
        let dispatch_done = ctx.now();
        self.check_caller(proc)?;
        {
            let st = self.state.lock();
            self.check_owner(&st, port, proc.pid)?;
        }
        self.check_dest(dst)?;
        if self.mcp.path_is_dead(FabricNodeId(dst.node.0)) {
            return Err(BclError::PathDead(dst.node));
        }
        if chan >= self.cfg.limits.open_channels {
            return Err(self.reject(BclError::BadChannel(ChannelId::open(chan))));
        }
        self.check_buffer(proc, addr, len)?;
        let segs = self.pin_translate(ctx, proc, addr, len)?;
        let pin_done = ctx.now();
        let msg_id = self.alloc_msg_id();
        self.charge_descriptor_pio(ctx, segs.len() as u64);
        self.trace_send_trap(msg_id, trap_entry, dispatch_done, pin_done, ctx.now(), len);
        self.mcp.post_send(SendJob {
            src_port: port,
            dst_fid: FabricNodeId(dst.node.0),
            dst_port: dst.port,
            channel: ChannelId::open(chan),
            msg_id,
            segments: segs,
            total_len: len,
            kind: JobKind::RmaWrite { offset },
            retries: 0,
            notify_sender: true,
        });
        Ok(msg_id)
    }

    /// One-sided read from `dst`'s open channel into a local buffer.
    #[allow(clippy::too_many_arguments)]
    pub fn ioctl_rma_read(
        &self,
        ctx: &mut ActorCtx,
        proc: &OsProcess,
        port: PortId,
        dst: ProcAddr,
        chan: u16,
        offset: u64,
        into: VirtAddr,
        len: u64,
    ) -> Result<u32, BclError> {
        let trap_entry = ctx.now();
        self.charge_checks(ctx);
        let dispatch_done = ctx.now();
        self.check_caller(proc)?;
        {
            let st = self.state.lock();
            self.check_owner(&st, port, proc.pid)?;
        }
        self.check_dest(dst)?;
        if self.mcp.path_is_dead(FabricNodeId(dst.node.0)) {
            return Err(BclError::PathDead(dst.node));
        }
        if chan >= self.cfg.limits.open_channels {
            return Err(self.reject(BclError::BadChannel(ChannelId::open(chan))));
        }
        self.check_buffer(proc, into, len)?;
        let segs = self.pin_translate(ctx, proc, into, len)?;
        let pin_done = ctx.now();
        let msg_id = self.alloc_msg_id();
        self.charge_descriptor_pio(ctx, 1);
        self.trace_send_trap(msg_id, trap_entry, dispatch_done, pin_done, ctx.now(), len);
        self.mcp.post_send(SendJob {
            src_port: port,
            dst_fid: FabricNodeId(dst.node.0),
            dst_port: dst.port,
            channel: ChannelId::open(chan),
            msg_id,
            segments: segs,
            total_len: 0, // the request packet itself carries no payload
            kind: JobKind::RmaReadReq { offset, len },
            retries: 0,
            notify_sender: false,
        });
        Ok(msg_id)
    }

    /// The collective ioctl — one kernel trap buys the whole collective.
    /// Pins the contribution and result buffers, validates every peer the
    /// schedule names (§4.3 checks apply to each), and hands the NIC a plan
    /// descriptor. Fan-in combining and fan-out forwarding then run
    /// firmware-side with no further host crossings until the initiator
    /// polls its completion event (`ChainPolicy::collective()`).
    #[allow(clippy::too_many_arguments)] // mirrors the ioctl request block
    pub fn ioctl_collective(
        &self,
        ctx: &mut ActorCtx,
        proc: &OsProcess,
        port: PortId,
        coll_id: u32,
        op: CollOp,
        steps: Vec<CollStep>,
        payload: VirtAddr,
        payload_len: u64,
        result: VirtAddr,
        result_len: u64,
    ) -> Result<u32, BclError> {
        let trap_entry = ctx.now();
        self.charge_checks(ctx);
        let dispatch_done = ctx.now();
        self.check_caller(proc)?;
        {
            let st = self.state.lock();
            self.check_owner(&st, port, proc.pid)?;
        }
        // Every peer the schedule names is a communication target: the same
        // destination checks as a send, per edge.
        for step in &steps {
            for p in step.recv_from.iter().chain(step.send_to.iter()) {
                self.check_dest(*p)?;
                if self.mcp.path_is_dead(FabricNodeId(p.node.0)) {
                    return Err(BclError::PathDead(p.node));
                }
            }
        }
        // Single-fragment contract: each wire contribution is the payload
        // plus the 4-byte collective id in one packet. Whole f64 lanes only,
        // so NIC-side combining can never straddle an element.
        let max = self.mcp.frag_cap().saturating_sub(4);
        if payload_len > max {
            return Err(self.reject(BclError::MessageTooLong {
                len: payload_len,
                max,
            }));
        }
        if !payload_len.is_multiple_of(8) || !result_len.is_multiple_of(8) {
            return Err(self.reject(BclError::BadBuffer {
                addr: payload.0,
                len: payload_len,
            }));
        }
        if self.mcp.queue_depth() >= self.cfg.limits.send_ring {
            return Err(BclError::RingFull);
        }
        let payload_segs = if payload_len > 0 {
            self.check_buffer(proc, payload, payload_len)?;
            self.pin_translate(ctx, proc, payload, payload_len)?
        } else {
            Vec::new()
        };
        let result_segs = if result_len > 0 {
            self.check_buffer(proc, result, result_len)?;
            self.pin_translate(ctx, proc, result, result_len)?
        } else {
            Vec::new()
        };
        if payload_len == 0 && result_len == 0 {
            // Barrier: the table is still consulted once.
            let start = ctx.now();
            ctx.sim().trace_span(
                self.track_tx,
                "kernel: pin-down table lookup + translation",
                start,
                start + self.os.costs.pin_lookup_hit,
            );
            ctx.sleep(self.os.costs.pin_lookup_hit);
        }
        let pin_done = ctx.now();
        let msg_id = self.alloc_msg_id();
        self.charge_descriptor_pio(ctx, (payload_segs.len() + result_segs.len()).max(1) as u64);
        self.trace_send_trap(
            msg_id,
            trap_entry,
            dispatch_done,
            pin_done,
            ctx.now(),
            payload_len,
        );
        self.mcp.post_collective(CollSetup {
            port,
            coll_id,
            op,
            steps,
            payload: payload_segs,
            payload_len,
            result: result_segs,
            result_len,
            msg_id,
        });
        Ok(msg_id)
    }

    fn alloc_msg_id(&self) -> u32 {
        let mut st = self.state.lock();
        let id = st.next_msg;
        st.next_msg = st.next_msg.wrapping_add(2);
        id
    }

    /// Per-message trace of the one send trap: a `kernel:trap` instant at
    /// ioctl entry (the BCL contract allows exactly one per message), the
    /// `kernel:ioctl_send` span covering checks, pin/translate, and
    /// descriptor PIO, plus the kernel sub-stage spans the critical-path
    /// analyzer attributes (Fig. 5/7 stage breakdowns).
    ///
    /// The OS charges the mode-switch costs *around* the ioctl body, so the
    /// trap enter/exit spans are reconstructed from the cost model on either
    /// side of `[entry, exit]` rather than observed here.
    fn trace_send_trap(
        &self,
        msg_id: u32,
        entry: SimTime,
        dispatch_done: SimTime,
        pin_done: SimTime,
        exit: SimTime,
        bytes: u64,
    ) {
        let sim = self.os.sim();
        if !sim.msg_trace().enabled() {
            return;
        }
        let node = self.os.node_id.0;
        let trace = TraceId::new(node, msg_id);
        sim.trace_event(TraceEvent::instant(
            trace,
            node,
            TraceLayer::Kernel,
            stage::TRAP,
            entry.as_ns(),
        ));
        sim.trace_event(
            TraceEvent::span(
                trace,
                node,
                TraceLayer::Kernel,
                stage::IOCTL_SEND,
                entry.as_ns(),
                exit.as_ns(),
            )
            .with_bytes(bytes),
        );
        let (entry, dispatch_done, pin_done, exit) = (
            entry.as_ns(),
            dispatch_done.as_ns(),
            pin_done.as_ns(),
            exit.as_ns(),
        );
        let enter_ns = self.os.costs.trap_enter.as_ns();
        let exit_ns = self.os.costs.trap_exit.as_ns();
        for (st, lo, hi) in [
            (stage::K_TRAP_ENTER, entry.saturating_sub(enter_ns), entry),
            (stage::K_DISPATCH, entry, dispatch_done),
            (stage::K_PIN, dispatch_done, pin_done),
            (stage::K_PIO, pin_done, exit),
            (stage::K_TRAP_EXIT, exit, exit + exit_ns),
        ] {
            sim.trace_event(TraceEvent::span(
                trace,
                node,
                TraceLayer::Kernel,
                st,
                lo,
                hi,
            ));
        }
    }

    /// Kernel-visible cost of one trap round trip (for the harnesses).
    pub fn trap_cost(&self) -> SimDuration {
        self.os.costs.trap_roundtrip()
    }
}
