//! BCL error types.
//!
//! Every rejection the kernel module can produce is a distinct variant —
//! the security tests assert on them — and user-library misuse is separated
//! from kernel rejections so callers can tell which layer refused.

use suca_mem::MemError;
use suca_os::{NodeId, Pid};

use crate::port::{ChannelId, PortId};

/// Errors surfaced by the BCL user library / kernel module.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BclError {
    /// Caller's PID is not a live process on this node (kernel check).
    DeadProcess(Pid),
    /// Caller does not own the port it is operating on (kernel check).
    NotPortOwner {
        /// Port being accessed.
        port: PortId,
        /// PID that tried.
        pid: Pid,
    },
    /// The process already created its one allowed port (paper §2.2:
    /// "Each process can create only one port").
    PortAlreadyOpen(Pid),
    /// No port slots left on this node.
    PortTableFull,
    /// Unknown destination node.
    BadNode(NodeId),
    /// Destination port id out of range.
    BadPort(PortId),
    /// Channel id out of range for its kind.
    BadChannel(ChannelId),
    /// The buffer range is not mapped in the caller's address space
    /// (kernel check — the classic forged-pointer attack).
    BadBuffer {
        /// Start address of the offending range.
        addr: u64,
        /// Length of the offending range.
        len: u64,
    },
    /// Message longer than the configured maximum.
    MessageTooLong {
        /// Requested length.
        len: u64,
        /// Configured maximum.
        max: u64,
    },
    /// Message longer than a system-channel buffer.
    TooBigForSystemChannel {
        /// Requested length.
        len: u64,
        /// System buffer size.
        max: u64,
    },
    /// Send-request ring is full (back-pressure; retry after completions).
    RingFull,
    /// The NIC declared every path to this node dead (retransmission
    /// exhaustion on all rails). Terminal for new sends until the firmware
    /// sees ack progress again; callers should re-home the work.
    PathDead(NodeId),
    /// A normal channel was posted twice without being consumed.
    ChannelBusy(ChannelId),
    /// RMA access outside the bound open-channel buffer.
    RmaOutOfRange {
        /// Requested end offset.
        end: u64,
        /// Bound buffer length.
        len: u64,
    },
    /// Underlying memory error (propagated from the substrate).
    Mem(MemError),
}

impl From<MemError> for BclError {
    fn from(e: MemError) -> Self {
        BclError::Mem(e)
    }
}

impl core::fmt::Display for BclError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BclError::DeadProcess(p) => write!(f, "pid {p:?} is not a live process"),
            BclError::NotPortOwner { port, pid } => {
                write!(f, "pid {pid:?} does not own port {port:?}")
            }
            BclError::PortAlreadyOpen(p) => write!(f, "pid {p:?} already has a port"),
            BclError::PortTableFull => write!(f, "no free port slots"),
            BclError::BadNode(n) => write!(f, "unknown node {n:?}"),
            BclError::BadPort(p) => write!(f, "bad port {p:?}"),
            BclError::BadChannel(c) => write!(f, "bad channel {c:?}"),
            BclError::BadBuffer { addr, len } => {
                write!(f, "buffer {addr:#x}+{len} not mapped in caller space")
            }
            BclError::MessageTooLong { len, max } => {
                write!(f, "message of {len} B exceeds max {max} B")
            }
            BclError::TooBigForSystemChannel { len, max } => {
                write!(f, "{len} B does not fit a {max} B system buffer")
            }
            BclError::RingFull => write!(f, "send request ring full"),
            BclError::PathDead(n) => write!(f, "every path to node {n:?} is dead"),
            BclError::ChannelBusy(c) => write!(f, "channel {c:?} already posted"),
            BclError::RmaOutOfRange { end, len } => {
                write!(
                    f,
                    "RMA access to offset {end} outside bound buffer of {len} B"
                )
            }
            BclError::Mem(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl std::error::Error for BclError {}
