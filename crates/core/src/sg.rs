//! Scatter/gather helpers over physical segment lists.
//!
//! The kernel module translates a user buffer into a list of
//! `(PhysAddr, len)` segments (one per page at most); the MCP's DMA engines
//! then read/write those segments at arbitrary byte offsets — fragments
//! rarely align with page boundaries.

use suca_mem::{MemError, PhysAddr, PhysMemory};

/// Total byte length of a segment list.
pub fn sg_total(segs: &[(PhysAddr, u64)]) -> u64 {
    segs.iter().map(|s| s.1).sum()
}

/// The sub-list covering `[offset, offset + len)` of the logical buffer.
/// Panics if the range exceeds the list — callers bounds-check first
/// (the kernel module or the NIC-side RMA validation).
pub fn slice_sg(segs: &[(PhysAddr, u64)], offset: u64, len: u64) -> Vec<(PhysAddr, u64)> {
    assert!(
        offset + len <= sg_total(segs),
        "sg slice [{offset}, {}) out of range {}",
        offset + len,
        sg_total(segs)
    );
    let mut out = Vec::new();
    let mut skip = offset;
    let mut need = len;
    for &(addr, seg_len) in segs {
        if need == 0 {
            break;
        }
        if skip >= seg_len {
            skip -= seg_len;
            continue;
        }
        let take = (seg_len - skip).min(need);
        out.push((addr.add(skip), take));
        need -= take;
        skip = 0;
    }
    out
}

/// Read `len` bytes starting at logical `offset` of the segment list.
pub fn read_sg(
    mem: &PhysMemory,
    segs: &[(PhysAddr, u64)],
    offset: u64,
    len: u64,
) -> Result<Vec<u8>, MemError> {
    let mut out = vec![0u8; len as usize];
    let mut done = 0usize;
    for (addr, seg_len) in slice_sg(segs, offset, len) {
        mem.read(addr, &mut out[done..done + seg_len as usize])?;
        done += seg_len as usize;
    }
    Ok(out)
}

/// Write `data` starting at logical `offset` of the segment list.
pub fn write_sg(
    mem: &PhysMemory,
    segs: &[(PhysAddr, u64)],
    offset: u64,
    data: &[u8],
) -> Result<(), MemError> {
    let mut done = 0usize;
    for (addr, seg_len) in slice_sg(segs, offset, data.len() as u64) {
        mem.write(addr, &data[done..done + seg_len as usize])?;
        done += seg_len as usize;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use suca_mem::{AddressSpace, Asid, PAGE_SIZE};

    fn setup(len: u64) -> (PhysMemory, Vec<(PhysAddr, u64)>) {
        let mem = PhysMemory::new(1 << 22);
        let space = AddressSpace::new(Asid(1), mem.clone());
        let base = space.alloc(len).unwrap();
        // Write a recognizable pattern through the virtual view.
        let pattern: Vec<u8> = (0..len).map(|i| (i % 241) as u8).collect();
        space.write(base, &pattern).unwrap();
        let segs = space.sg_list(base, len).unwrap();
        (mem, segs)
    }

    #[test]
    fn read_across_pages() {
        let (mem, segs) = setup(3 * PAGE_SIZE);
        let got = read_sg(&mem, &segs, PAGE_SIZE - 10, 20).unwrap();
        let expect: Vec<u8> = (PAGE_SIZE - 10..PAGE_SIZE + 10)
            .map(|i| (i % 241) as u8)
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (mem, segs) = setup(2 * PAGE_SIZE);
        write_sg(&mem, &segs, 100, b"patch").unwrap();
        assert_eq!(read_sg(&mem, &segs, 100, 5).unwrap(), b"patch");
        // Neighbors untouched.
        assert_eq!(read_sg(&mem, &segs, 99, 1).unwrap(), vec![99u8]);
    }

    #[test]
    fn slice_handles_zero_len() {
        let (_, segs) = setup(PAGE_SIZE);
        assert!(slice_sg(&segs, 50, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        let (_, segs) = setup(PAGE_SIZE);
        slice_sg(&segs, PAGE_SIZE - 1, 2);
    }

    #[test]
    fn sg_total_sums() {
        let (_, segs) = setup(PAGE_SIZE * 2 + 7);
        assert_eq!(sg_total(&segs), PAGE_SIZE * 2 + 7);
    }
}
