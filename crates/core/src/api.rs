//! The BCL user-level library.
//!
//! "BCL library provides a set of APIs. Applications linked with BCL library
//! can use these APIs to communicate with each other. In fact these APIs are
//! only the covers of some ioctl() syscall subcommands provided by BCL
//! kernel module." (§4.1.1)
//!
//! [`BclPort`] is that library: each method charges the user-space costs,
//! traps into the kernel module for anything that touches the NIC, and polls
//! completion queues in user space without any trap — the semi-user-level
//! receive path. Intra-node destinations short-circuit to the shared-memory
//! hub, never entering the kernel on the data path.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use suca_mem::VirtAddr;
use suca_os::{NodeOs, OsProcess};
use suca_sim::mtrace::{stage, TraceEvent, TraceId, TraceLayer};
use suca_sim::{ActorCtx, Sim};

use crate::coll::{CollOp, CollStep};
use crate::config::BclConfig;
use crate::error::BclError;
use crate::intranode::IntraHub;
use crate::kmod::BclKmod;
use crate::mcp::Mcp;
use crate::port::{ChannelId, ChannelKind, PortId, ProcAddr, RecvDataLoc, RecvEvent, SendEvent};
use crate::queues::UserQueues;

/// Everything BCL needs on one node: OS, kernel module, NIC firmware and
/// the intra-node hub. Built once per node (by `suca-cluster` or directly).
pub struct BclNode {
    sim: Sim,
    /// The node's OS.
    pub os: Arc<NodeOs>,
    /// The BCL kernel module.
    pub kmod: Arc<BclKmod>,
    /// The NIC firmware.
    pub mcp: Mcp,
    /// The intra-node shared-memory hub.
    pub intra: Arc<IntraHub>,
    cfg: BclConfig,
}

impl BclNode {
    /// Assemble the BCL stack on a node whose NIC firmware is `mcp`.
    pub fn new(
        sim: &Sim,
        os: Arc<NodeOs>,
        mcp: Mcp,
        num_nodes: u32,
        cfg: BclConfig,
    ) -> Arc<BclNode> {
        let kmod = BclKmod::new(os.clone(), mcp.clone(), num_nodes, cfg.clone());
        let intra = IntraHub::new(sim, os.node_id, os.memory().clone(), cfg.intra.clone());
        Arc::new(BclNode {
            sim: sim.clone(),
            os,
            kmod,
            mcp,
            intra,
            cfg,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &BclConfig {
        &self.cfg
    }

    /// The simulation handle.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Name of the fabric this node's NIC is attached to ("myrinet",
    /// "nwrc-mesh", ...). Upper layers use it to select collective plans.
    pub fn fabric_name(&self) -> &'static str {
        self.mcp.fabric_name()
    }
}

/// An open BCL port — the application-facing handle.
pub struct BclPort {
    node: Arc<BclNode>,
    proc: OsProcess,
    id: PortId,
    queues: Arc<UserQueues>,
    pool_user: Vec<VirtAddr>,
    /// User-side record of posted normal channels: channel → (addr, len).
    posted: Mutex<HashMap<u16, (VirtAddr, u64)>>,
    /// User-side record of bound open channels.
    bound: Mutex<HashMap<u16, (VirtAddr, u64)>>,
    /// Normal channels whose posting was consumed by the intra-node path
    /// (the NIC never saw the consumption; re-posts must replace).
    intra_consumed: Mutex<std::collections::HashSet<u16>>,
    intra_msg: Mutex<u32>,
    // Interned once so hot-path span/event recording never allocates.
    track_tx: &'static str,
    track_rx: &'static str,
}

impl BclPort {
    /// Open the process's (single) port: allocate completion queues and the
    /// system-channel buffer pool in user space, then trap into the kernel
    /// to register everything on the NIC.
    pub fn open(
        ctx: &mut ActorCtx,
        node: &Arc<BclNode>,
        proc: &OsProcess,
    ) -> Result<BclPort, BclError> {
        let cfg = node.config().clone();
        ctx.sleep(cfg.lib_compose);
        let queues = Arc::new(UserQueues::new(&node.sim));
        // Allocate the pool buffers in the caller's space.
        let mut pool_user = Vec::with_capacity(cfg.system_pool.buffers as usize);
        for _ in 0..cfg.system_pool.buffers {
            pool_user.push(proc.space.alloc(cfg.system_pool.buffer_bytes)?);
        }
        let os = node.os.clone();
        let kmod = node.kmod.clone();
        let q2 = queues.clone();
        let id = os.trap(ctx, |ctx| kmod.ioctl_open_port(ctx, proc, q2, &pool_user))?;
        node.intra.register_port(id, queues.clone());
        Ok(BclPort {
            node: node.clone(),
            proc: proc.clone(),
            id,
            queues,
            pool_user,
            posted: Mutex::new(HashMap::new()),
            bound: Mutex::new(HashMap::new()),
            intra_consumed: Mutex::new(std::collections::HashSet::new()),
            intra_msg: Mutex::new(1), // odd ids: intra-node
            track_tx: suca_sim::intern(&format!("n{}/tx", node.os.node_id.0)),
            track_rx: suca_sim::intern(&format!("n{}/rx", node.os.node_id.0)),
        })
    }

    /// This port's cluster-wide address.
    pub fn addr(&self) -> ProcAddr {
        ProcAddr {
            node: self.node.os.node_id,
            port: self.id,
        }
    }

    /// The owning process.
    pub fn process(&self) -> &OsProcess {
        &self.proc
    }

    /// Allocate a message buffer in this process's space (convenience).
    pub fn alloc_buffer(&self, len: u64) -> Result<VirtAddr, BclError> {
        Ok(self.proc.space.alloc(len.max(1))?)
    }

    /// Fill a user buffer (models the application producing data; free).
    pub fn write_buffer(&self, addr: VirtAddr, data: &[u8]) -> Result<(), BclError> {
        Ok(self.proc.space.write(addr, data)?)
    }

    /// Read a user buffer back.
    pub fn read_buffer(&self, addr: VirtAddr, len: u64) -> Result<Vec<u8>, BclError> {
        Ok(self.proc.space.read_vec(addr, len)?)
    }

    /// Post a receive buffer of `len` bytes on normal channel `chan`;
    /// allocates the buffer and returns its address. One kernel trap.
    pub fn post_recv(&self, ctx: &mut ActorCtx, chan: u16, len: u64) -> Result<VirtAddr, BclError> {
        let addr = self.alloc_buffer(len)?;
        self.post_recv_at(ctx, chan, addr, len)?;
        Ok(addr)
    }

    /// Post an existing buffer on normal channel `chan`. One kernel trap.
    pub fn post_recv_at(
        &self,
        ctx: &mut ActorCtx,
        chan: u16,
        addr: VirtAddr,
        len: u64,
    ) -> Result<(), BclError> {
        ctx.sleep(self.node.cfg.lib_compose);
        let replace = self.intra_consumed.lock().remove(&chan);
        let kmod = self.node.kmod.clone();
        let proc = self.proc.clone();
        let id = self.id;
        self.node.os.trap(ctx, |ctx| {
            kmod.ioctl_post_recv(ctx, &proc, id, chan, addr, len, replace)
        })?;
        self.posted.lock().insert(chan, (addr, len));
        Ok(())
    }

    /// Send `len` bytes starting at `addr` to `dst` on `channel`.
    /// Returns the message id; completion arrives as a [`SendEvent`].
    ///
    /// Inter-node: one kernel trap (the defining cost of the architecture).
    /// Intra-node: no trap — the shared-memory path.
    pub fn send(
        &self,
        ctx: &mut ActorCtx,
        dst: ProcAddr,
        channel: ChannelId,
        addr: VirtAddr,
        len: u64,
    ) -> Result<u32, BclError> {
        if dst.node == self.node.os.node_id {
            return self.send_intra(ctx, dst, channel, addr, len);
        }
        let start = ctx.now();
        ctx.sim().trace_span(
            self.track_tx,
            "library: compose send request",
            start,
            start + self.node.cfg.lib_compose,
        );
        ctx.sleep(self.node.cfg.lib_compose);
        let kmod = self.node.kmod.clone();
        let proc = self.proc.clone();
        let id = self.id;
        let msg_id = self.node.os.trap(ctx, |ctx| {
            kmod.ioctl_send(ctx, &proc, id, dst, channel, addr, len)
        })?;
        self.trace_send_span(ctx, msg_id, start, len);
        Ok(msg_id)
    }

    /// Record the library-layer send span (compose through trap return) for
    /// an inter-node message, plus the `api:compose` sub-stage the
    /// critical-path analyzer attributes. Intra-node sends (odd ids) are
    /// never traced.
    fn trace_send_span(&self, ctx: &ActorCtx, msg_id: u32, start: suca_sim::SimTime, len: u64) {
        let sim = ctx.sim();
        if !sim.msg_trace().enabled() {
            return;
        }
        let node = self.node.os.node_id.0;
        let trace = TraceId::new(node, msg_id);
        sim.trace_event(
            TraceEvent::span(
                trace,
                node,
                TraceLayer::Library,
                stage::SEND,
                start.as_ns(),
                ctx.now().as_ns(),
            )
            .with_bytes(len),
        );
        sim.trace_event(TraceEvent::span(
            trace,
            node,
            TraceLayer::Library,
            stage::COMPOSE,
            start.as_ns(),
            start.as_ns() + self.node.cfg.lib_compose.as_ns(),
        ));
    }

    /// Record the user-space poll instant that closes a traced chain.
    fn trace_poll(&self, ctx: &ActorCtx, origin: u32, msg_id: u32, stage_name: &'static str) {
        // Intra-node messages carry odd, node-local ids and are not traced.
        if !msg_id.is_multiple_of(2) {
            return;
        }
        let sim = ctx.sim();
        if !sim.msg_trace().enabled() {
            return;
        }
        sim.trace_event(TraceEvent::instant(
            TraceId::new(origin, msg_id),
            self.node.os.node_id.0,
            TraceLayer::Library,
            stage_name,
            ctx.now().as_ns(),
        ));
    }

    /// Convenience: allocate a buffer, fill it with `data`, and send it.
    pub fn send_bytes(
        &self,
        ctx: &mut ActorCtx,
        dst: ProcAddr,
        channel: ChannelId,
        data: &[u8],
    ) -> Result<u32, BclError> {
        let addr = self.alloc_buffer(data.len() as u64)?;
        self.write_buffer(addr, data)?;
        self.send(ctx, dst, channel, addr, data.len() as u64)
    }

    fn send_intra(
        &self,
        ctx: &mut ActorCtx,
        dst: ProcAddr,
        channel: ChannelId,
        addr: VirtAddr,
        len: u64,
    ) -> Result<u32, BclError> {
        // Library-side checks only — no kernel on this path, and a bad
        // pointer can only hurt the sender itself (it reads its own space).
        if len > self.node.cfg.limits.max_message_bytes {
            return Err(BclError::MessageTooLong {
                len,
                max: self.node.cfg.limits.max_message_bytes,
            });
        }
        let data = if len > 0 {
            self.proc.space.read_vec(addr, len)?
        } else {
            Vec::new()
        };
        let msg_id = {
            let mut c = self.intra_msg.lock();
            let id = *c;
            *c = c.wrapping_add(2);
            id
        };
        if !self
            .node
            .intra
            .send(ctx, self.id, dst.port, channel, msg_id, &data)
        {
            return Err(BclError::BadPort(dst.port));
        }
        Ok(msg_id)
    }

    /// Non-blocking poll of the receive completion queue (no trap). Charges
    /// the paper's 1.01 µs only when an event is consumed.
    pub fn poll_recv(&self, ctx: &mut ActorCtx) -> Option<RecvEvent> {
        let ev = self.queues.pop_recv()?;
        ctx.sleep(self.node.cfg.poll_recv);
        self.trace_poll(ctx, ev.src.node.0, ev.msg_id, stage::POLL_RECV);
        Some(ev)
    }

    /// Block until a receive event arrives or `timeout` elapses.
    pub fn wait_recv_timeout(
        &self,
        ctx: &mut ActorCtx,
        timeout: suca_sim::SimDuration,
    ) -> Option<RecvEvent> {
        let deadline = ctx.now() + timeout;
        loop {
            if let Some(ev) = self.poll_recv(ctx) {
                return Some(ev);
            }
            if ctx.now() >= deadline {
                return None;
            }
            self.queues
                .recv_signal
                .wait_timeout(ctx, deadline.since(ctx.now()));
        }
    }

    /// Block until a receive event arrives (polling semantics, no trap).
    pub fn wait_recv(&self, ctx: &mut ActorCtx) -> RecvEvent {
        let ev = self.queues.wait_recv(ctx);
        let start = ctx.now();
        ctx.sim().trace_span(
            self.track_rx,
            "library: poll completion queue (user space, no trap)",
            start,
            start + self.node.cfg.poll_recv,
        );
        ctx.sleep(self.node.cfg.poll_recv);
        self.trace_poll(ctx, ev.src.node.0, ev.msg_id, stage::POLL_RECV);
        ev
    }

    /// Non-blocking poll of the send completion queue (0.82 µs on success).
    pub fn poll_send(&self, ctx: &mut ActorCtx) -> Option<SendEvent> {
        let ev = self.queues.pop_send()?;
        ctx.sleep(self.node.cfg.poll_send);
        self.trace_poll(ctx, self.node.os.node_id.0, ev.msg_id, stage::POLL_SEND);
        Some(ev)
    }

    /// Block until at least one event (send or receive) is queued, without
    /// consuming it. The EADI progress engine pumps on this.
    pub fn wait_event(&self, ctx: &mut ActorCtx) {
        self.queues.wait_any(ctx);
    }

    /// Block until a send event arrives.
    pub fn wait_send(&self, ctx: &mut ActorCtx) -> SendEvent {
        let ev = self.queues.wait_send(ctx);
        ctx.sleep(self.node.cfg.poll_send);
        self.trace_poll(ctx, self.node.os.node_id.0, ev.msg_id, stage::POLL_SEND);
        ev
    }

    /// Block until a send event arrives or `timeout` elapses. The
    /// backpressure twin of [`BclPort::wait_recv_timeout`]: callers that
    /// hit [`crate::BclError::RingFull`] can park here without risking an
    /// unbounded stall when completions stop flowing.
    pub fn wait_send_timeout(
        &self,
        ctx: &mut ActorCtx,
        timeout: suca_sim::SimDuration,
    ) -> Option<SendEvent> {
        let deadline = ctx.now() + timeout;
        loop {
            if let Some(ev) = self.poll_send(ctx) {
                return Some(ev);
            }
            if ctx.now() >= deadline {
                return None;
            }
            self.queues
                .send_signal
                .wait_timeout(ctx, deadline.since(ctx.now()));
        }
    }

    /// Completion events currently queued as `(recv, send)` — the
    /// in-flight backlog an upper layer sees without consuming anything.
    pub fn queue_depths(&self) -> (usize, usize) {
        self.queues.depths()
    }

    /// Fetch the payload of a receive event and recycle its buffer.
    pub fn recv_bytes(&self, ctx: &mut ActorCtx, ev: &RecvEvent) -> Result<Vec<u8>, BclError> {
        match &ev.data {
            RecvDataLoc::SystemBuffer(idx) => {
                let addr = self.pool_user[*idx as usize];
                let data = self.proc.space.read_vec(addr, ev.len)?;
                // Return the buffer to the pool ("After the receiver gets
                // the message, the buffer will be returned").
                self.release_system_buffer(*idx);
                Ok(data)
            }
            RecvDataLoc::Posted => {
                let (addr, _len) = self
                    .posted
                    .lock()
                    .remove(&ev.channel.index)
                    .ok_or(BclError::BadChannel(ev.channel))?;
                Ok(self.proc.space.read_vec(addr, ev.len)?)
            }
            RecvDataLoc::Inline(v) => {
                // Intra-node delivery; the pipelined copy-out time is part
                // of the delivery lag. If this was a normal channel with a
                // posted buffer, land the bytes there too.
                let _ = &ctx;
                if ev.channel.kind == ChannelKind::Normal {
                    if let Some((addr, _)) = self.posted.lock().remove(&ev.channel.index) {
                        self.proc.space.write(addr, v)?;
                        self.intra_consumed.lock().insert(ev.channel.index);
                    }
                }
                Ok(v.clone())
            }
        }
    }

    /// Give a consumed system-pool buffer back (done automatically by
    /// [`BclPort::recv_bytes`]; exposed for zero-copy consumers).
    pub fn release_system_buffer(&self, idx: u32) {
        self.node.mcp.release_pool_buffer(self.id, idx);
    }

    /// Bind a fresh buffer of `len` bytes to open channel `chan` and return
    /// its address. One kernel trap.
    pub fn bind_open(&self, ctx: &mut ActorCtx, chan: u16, len: u64) -> Result<VirtAddr, BclError> {
        let addr = self.alloc_buffer(len)?;
        ctx.sleep(self.node.cfg.lib_compose);
        let kmod = self.node.kmod.clone();
        let proc = self.proc.clone();
        let id = self.id;
        self.node.os.trap(ctx, |ctx| {
            kmod.ioctl_bind_open(ctx, &proc, id, chan, addr, len)
        })?;
        self.bound.lock().insert(chan, (addr, len));
        Ok(addr)
    }

    /// One-sided write of `len` bytes at `addr` into `dst`'s open channel
    /// `chan` at `offset`. Completion arrives as a [`SendEvent`].
    #[allow(clippy::too_many_arguments)]
    pub fn rma_write(
        &self,
        ctx: &mut ActorCtx,
        dst: ProcAddr,
        chan: u16,
        offset: u64,
        addr: VirtAddr,
        len: u64,
    ) -> Result<u32, BclError> {
        let start = ctx.now();
        ctx.sleep(self.node.cfg.lib_compose);
        let kmod = self.node.kmod.clone();
        let proc = self.proc.clone();
        let id = self.id;
        let msg_id = self.node.os.trap(ctx, |ctx| {
            kmod.ioctl_rma_write(ctx, &proc, id, dst, chan, offset, addr, len)
        })?;
        self.trace_send_span(ctx, msg_id, start, len);
        Ok(msg_id)
    }

    /// One-sided read of `len` bytes from `dst`'s open channel `chan` at
    /// `offset` into local buffer `into`. Completion (data landed) arrives
    /// as a [`SendEvent`] carrying the returned message id.
    #[allow(clippy::too_many_arguments)]
    pub fn rma_read(
        &self,
        ctx: &mut ActorCtx,
        dst: ProcAddr,
        chan: u16,
        offset: u64,
        into: VirtAddr,
        len: u64,
    ) -> Result<u32, BclError> {
        let start = ctx.now();
        ctx.sleep(self.node.cfg.lib_compose);
        let kmod = self.node.kmod.clone();
        let proc = self.proc.clone();
        let id = self.id;
        let msg_id = self.node.os.trap(ctx, |ctx| {
            kmod.ioctl_rma_read(ctx, &proc, id, dst, chan, offset, into, len)
        })?;
        self.trace_send_span(ctx, msg_id, start, len);
        Ok(msg_id)
    }

    /// Launch a NIC-offloaded collective. The `steps` schedule (compiled
    /// from a `suca-coll` plan) is handed to the NIC in one kernel trap;
    /// the MCP's plan interpreter then runs the whole collective —
    /// combining, forwarding, result DMA — without another host crossing.
    /// Completion arrives as a [`SendEvent`] carrying the returned id.
    ///
    /// `payload`/`payload_len` is this participant's contribution (0 for
    /// barrier); `result`/`result_len` is where the final accumulator is
    /// DMA'd (0 when no result is wanted, e.g. barrier).
    #[allow(clippy::too_many_arguments)]
    pub fn collective(
        &self,
        ctx: &mut ActorCtx,
        coll_id: u32,
        op: CollOp,
        steps: Vec<CollStep>,
        payload: VirtAddr,
        payload_len: u64,
        result: VirtAddr,
        result_len: u64,
    ) -> Result<u32, BclError> {
        let start = ctx.now();
        ctx.sim().trace_span(
            self.track_tx,
            "library: compose collective request",
            start,
            start + self.node.cfg.lib_compose,
        );
        ctx.sleep(self.node.cfg.lib_compose);
        let kmod = self.node.kmod.clone();
        let proc = self.proc.clone();
        let id = self.id;
        let msg_id = self.node.os.trap(ctx, |ctx| {
            kmod.ioctl_collective(
                ctx,
                &proc,
                id,
                coll_id,
                op,
                steps,
                payload,
                payload_len,
                result,
                result_len,
            )
        })?;
        self.trace_send_span(ctx, msg_id, start, payload_len);
        Ok(msg_id)
    }

    /// Close the port. One kernel trap.
    pub fn close(self, ctx: &mut ActorCtx) -> Result<(), BclError> {
        ctx.sleep(self.node.cfg.lib_compose);
        self.node.intra.unregister_port(self.id);
        let kmod = self.node.kmod.clone();
        let proc = self.proc.clone();
        let id = self.id;
        self.node
            .os
            .trap(ctx, |ctx| kmod.ioctl_close_port(ctx, &proc, id))
    }
}
