//! # suca-bcl — the Basic Communication Library
//!
//! The paper's contribution: a **semi-user-level** communication protocol.
//! One kernel trap on the send path (security checks, pin-down address
//! translation, PIO descriptor fill); a completely kernel-free,
//! interrupt-free receive path (the NIC DMAs payloads into user buffers and
//! completion events into user-space queues that the process polls).
//!
//! Three layers, exactly as on DAWNING-3000:
//!
//! * [`api::BclPort`] — the user library,
//! * [`kmod::BclKmod`] — the kernel module (ioctl subcommands),
//! * [`mcp::Mcp`] — the NIC firmware (Message Control Program).
//!
//! Plus the intra-node shared-memory path ([`intranode::IntraHub`]), the
//! go-back-N reliability layer ([`reliable`]), and the calibrated cost
//! model ([`config::BclConfig`]) that reproduces the paper's measurements.

#![warn(missing_docs)]

pub mod api;
pub mod coll;
pub mod config;
pub mod error;
pub mod intranode;
pub mod kmod;
pub mod mcp;
pub mod port;
pub mod queues;
pub mod reliable;
pub mod sg;
pub mod wire;

pub use api::{BclNode, BclPort};
pub use coll::{CollOp, CollSetup, CollStep};
pub use config::BclConfig;
pub use error::BclError;
pub use kmod::BclKmod;
pub use mcp::{JobKind, Mcp, SendJob};
pub use port::{
    ChannelId, ChannelKind, PortId, ProcAddr, RecvDataLoc, RecvEvent, SendEvent, SendStatus,
};
pub use queues::{SystemPool, UserQueues};
