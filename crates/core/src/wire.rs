//! BCL wire format.
//!
//! Every packet the MCP injects starts with a fixed 32-byte header followed
//! by the fragment payload. Headers are serialized to real bytes — the
//! fabric is given one opaque buffer, exactly as Myrinet sees one packet —
//! and parsed back on the receiving NIC, so header overhead shows up in wire
//! timing and corruption genuinely garbles messages.

use bytes::{BufMut, Bytes, BytesMut};

use crate::port::{ChannelId, ChannelKind, PortId};

/// Serialized header size.
pub const HEADER_BYTES: usize = 32;

/// Header magic (low half of the old 32-bit magic word; the high half now
/// carries the go-back-N stream epoch).
pub const WIRE_MAGIC: u16 = 0xB0C1;

/// Packet type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireKind {
    /// Message fragment.
    Data,
    /// Cumulative acknowledgement of link-level sequence numbers.
    Ack,
    /// Receiver could not accept the message (channel not posted / pool
    /// full); sender should retry the whole message.
    Reject,
    /// RMA read request (target responds with `RmaReadData` fragments on the
    /// requester's pending-read stream).
    RmaReadReq,
    /// RMA read response fragment; `msg_id` matches the original request.
    RmaReadData,
    /// Epoch resync request: the sender opens a new go-back-N stream epoch
    /// (rail failover, NIC reset). The receiver must adopt the epoch, reset
    /// its receive stream, and answer with [`WireKind::EpochSyncAck`].
    EpochSync,
    /// Epoch resync reply; `seq` carries the receiver's cumulative ack for
    /// the *previous* epoch's stream so the sender retransmits only what was
    /// genuinely undelivered.
    EpochSyncAck,
    /// One collective-plan contribution: the sender's accumulator for one
    /// plan step. Single-fragment; the payload starts with a 4-byte LE
    /// collective id and `offset` carries the plan chunk index. Rides the
    /// go-back-N stream like `Data` but is consumed by the receiving NIC's
    /// plan interpreter instead of the host delivery path.
    Coll,
}

impl WireKind {
    fn to_wire(self) -> u8 {
        match self {
            WireKind::Data => 1,
            WireKind::Ack => 2,
            WireKind::Reject => 3,
            WireKind::RmaReadReq => 4,
            WireKind::RmaReadData => 5,
            WireKind::EpochSync => 6,
            WireKind::EpochSyncAck => 7,
            WireKind::Coll => 8,
        }
    }
    fn from_wire(b: u8) -> Option<Self> {
        match b {
            1 => Some(WireKind::Data),
            2 => Some(WireKind::Ack),
            3 => Some(WireKind::Reject),
            4 => Some(WireKind::RmaReadReq),
            5 => Some(WireKind::RmaReadData),
            6 => Some(WireKind::EpochSync),
            7 => Some(WireKind::EpochSyncAck),
            8 => Some(WireKind::Coll),
            _ => None,
        }
    }
}

/// Parsed packet header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WireHeader {
    /// Packet type.
    pub kind: WireKind,
    /// Destination channel (kind + index).
    pub channel: ChannelId,
    /// Sending port on the source node.
    pub src_port: PortId,
    /// Destination port on the destination node.
    pub dst_port: PortId,
    /// Sender-assigned message id (per source NIC, monotonically increasing).
    pub msg_id: u32,
    /// Link-level go-back-N sequence number (Data) or cumulative ack (Ack).
    pub seq: u32,
    /// Byte offset of this fragment within the message; for RMA, offset
    /// within the bound buffer.
    pub offset: u32,
    /// Total message length in bytes.
    pub total_len: u32,
    /// Payload bytes following the header in this packet.
    pub frag_len: u32,
    /// Go-back-N stream epoch: bumped by the sending kernel on rail failover
    /// or NIC reset so both ends can resync without losing or duplicating
    /// messages. Packets carrying a stale epoch are counted and dropped.
    pub epoch: u16,
}

impl WireHeader {
    /// Serialize, prepending to `payload`.
    pub fn encode(&self, payload: &[u8]) -> Bytes {
        debug_assert_eq!(payload.len(), self.frag_len as usize);
        let mut b = BytesMut::with_capacity(HEADER_BYTES + payload.len());
        b.put_u8(self.kind.to_wire());
        b.put_u8(self.channel.kind.to_wire());
        b.put_u16_le(self.channel.index);
        b.put_u16_le(self.src_port.0);
        b.put_u16_le(self.dst_port.0);
        b.put_u32_le(self.msg_id);
        b.put_u32_le(self.seq);
        b.put_u32_le(self.offset);
        b.put_u32_le(self.total_len);
        b.put_u32_le(self.frag_len);
        b.put_u16_le(WIRE_MAGIC);
        b.put_u16_le(self.epoch);
        debug_assert_eq!(b.len(), HEADER_BYTES);
        b.put_slice(payload);
        b.freeze()
    }

    /// Parse a packet; returns the header and the payload slice.
    /// `None` on malformed input (short packet, bad kind, inconsistent
    /// lengths) — corrupted packets must never panic the firmware.
    pub fn decode(packet: &Bytes) -> Option<(WireHeader, Bytes)> {
        if packet.len() < HEADER_BYTES {
            return None;
        }
        let b = &packet[..];
        let kind = WireKind::from_wire(b[0])?;
        let chan_kind = ChannelKind::from_wire(b[1])?;
        let u16le = |i: usize| u16::from_le_bytes([b[i], b[i + 1]]);
        let u32le = |i: usize| u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
        let header = WireHeader {
            kind,
            channel: ChannelId {
                kind: chan_kind,
                index: u16le(2),
            },
            src_port: PortId(u16le(4)),
            dst_port: PortId(u16le(6)),
            msg_id: u32le(8),
            seq: u32le(12),
            offset: u32le(16),
            total_len: u32le(20),
            frag_len: u32le(24),
            epoch: u16le(30),
        };
        if u16le(28) != WIRE_MAGIC {
            return None;
        }
        if packet.len() != HEADER_BYTES + header.frag_len as usize {
            return None;
        }
        Some((header, packet.slice(HEADER_BYTES..)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WireHeader {
        WireHeader {
            kind: WireKind::Data,
            channel: ChannelId::normal(5),
            src_port: PortId(2),
            dst_port: PortId(9),
            msg_id: 1234,
            seq: 77,
            offset: 8192,
            total_len: 10_000,
            frag_len: 5,
            epoch: 3,
        }
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let pkt = h.encode(b"hello");
        assert_eq!(pkt.len(), HEADER_BYTES + 5);
        let (h2, payload) = WireHeader::decode(&pkt).unwrap();
        assert_eq!(h, h2);
        assert_eq!(&payload[..], b"hello");
    }

    #[test]
    fn all_kinds_roundtrip() {
        for kind in [
            WireKind::Data,
            WireKind::Ack,
            WireKind::Reject,
            WireKind::RmaReadReq,
            WireKind::RmaReadData,
            WireKind::EpochSync,
            WireKind::EpochSyncAck,
            WireKind::Coll,
        ] {
            let mut h = sample();
            h.kind = kind;
            h.frag_len = 0;
            let (h2, _) = WireHeader::decode(&h.encode(b"")).unwrap();
            assert_eq!(h2.kind, kind);
        }
    }

    #[test]
    fn epoch_roundtrips_through_the_magic_word() {
        for epoch in [0u16, 1, 0x7FFF, u16::MAX] {
            let mut h = sample();
            h.epoch = epoch;
            let (h2, _) = WireHeader::decode(&h.encode(b"hello")).unwrap();
            assert_eq!(h2.epoch, epoch);
        }
    }

    #[test]
    fn malformed_packets_return_none() {
        // Too short.
        assert!(WireHeader::decode(&Bytes::from_static(b"tiny")).is_none());
        // Bad kind byte.
        let mut raw = sample().encode(b"hello").to_vec();
        raw[0] = 200;
        assert!(WireHeader::decode(&Bytes::from(raw.clone())).is_none());
        // Length mismatch (truncated payload).
        let good = sample().encode(b"hello");
        let truncated = good.slice(..good.len() - 1);
        assert!(WireHeader::decode(&truncated).is_none());
        // Bad magic.
        let mut raw2 = sample().encode(b"hello").to_vec();
        raw2[28] ^= 0xFF;
        assert!(WireHeader::decode(&Bytes::from(raw2)).is_none());
    }
}
