//! Link-level reliability: go-back-N between NIC pairs.
//!
//! The paper's MCP "performs data checking and guarantees reliable
//! transmission in the on-card control program" — about 5.65 µs of the
//! one-way time — and "performs re-transmission when timeout". We implement
//! a classic go-back-N: per-destination sequence numbers, a bounded window
//! of unacked packets buffered in NIC SRAM, cumulative ACKs, and full-window
//! retransmission on timeout. The receiver accepts only the next expected
//! sequence number, which also guarantees in-order fragment delivery per
//! NIC pair (BCL relies on this for reassembly-free receives).
//!
//! This module is pure state logic (no simulator types) so the protocol can
//! be exhaustively unit- and property-tested; `mcp.rs` wires it to timers
//! and the fabric.

use std::collections::VecDeque;

use bytes::Bytes;

/// Serial-number comparison (RFC 1982 style): true when `a` precedes `b`
/// in the circular u32 sequence space. The signed interpretation of the
/// wrapped difference gives the right answer whenever the live sequence
/// numbers span less than 2³¹ — go-back-N windows are a handful of
/// packets, so this holds by nine orders of magnitude.
#[inline]
fn seq_before(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// A violated go-back-N sender invariant. The firmware never panics on
/// these: `mcp.rs` converts them into counted protocol errors that trip
/// the flight recorder and abandon the offending send (the same treatment
/// the MCP state machine gives its own inconsistencies).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GbnError {
    /// `record_sent` was handed a sequence number other than
    /// [`GbnSender::next_seq`].
    OutOfOrderSeq {
        /// The sequence number the stream expected next.
        expected: u32,
        /// The sequence number actually recorded.
        got: u32,
    },
    /// `record_sent` was called with the window already full.
    WindowOverflow {
        /// The configured window size (packets).
        window: u32,
    },
}

impl GbnError {
    /// Stable reason string for counters / flight-recorder banners.
    pub fn reason(&self) -> &'static str {
        match self {
            GbnError::OutOfOrderSeq { .. } => "go-back-N sender: out-of-order record_sent",
            GbnError::WindowOverflow { .. } => "go-back-N sender: window overflow",
        }
    }
}

/// Sender half of one NIC-pair stream.
///
/// ```
/// use suca_bcl::reliable::{GbnSender, GbnReceiver, GbnVerdict};
/// use bytes::Bytes;
///
/// let mut tx = GbnSender::new(4);
/// let mut rx = GbnReceiver::new();
/// let seq = tx.next_seq();
/// tx.record_sent(seq, Bytes::from_static(b"frag")).expect("in window");
/// assert_eq!(rx.on_data(seq), GbnVerdict::Accept);
/// assert_eq!(tx.on_ack(rx.cum_ack()), 1); // window slot freed
/// ```
pub struct GbnSender {
    next_seq: u32,
    window: u32,
    /// Unacked packets in seq order: `(seq, encoded packet)`.
    inflight: VecDeque<(u32, Bytes)>,
}

impl GbnSender {
    /// New stream with the given window (packets).
    pub fn new(window: u32) -> Self {
        assert!(window > 0);
        GbnSender {
            next_seq: 0,
            window,
            inflight: VecDeque::new(),
        }
    }

    /// True if the window has room for another packet.
    pub fn can_send(&self) -> bool {
        (self.inflight.len() as u32) < self.window
    }

    /// Sequence number the next packet must carry.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// Record a packet as sent (it must carry [`GbnSender::next_seq`]).
    /// The encoded bytes are retained for retransmission. A violated
    /// precondition is reported instead of panicking, so firmware can turn
    /// it into a counted protocol error.
    pub fn record_sent(&mut self, seq: u32, pkt: Bytes) -> Result<(), GbnError> {
        if seq != self.next_seq {
            return Err(GbnError::OutOfOrderSeq {
                expected: self.next_seq,
                got: seq,
            });
        }
        if !self.can_send() {
            return Err(GbnError::WindowOverflow {
                window: self.window,
            });
        }
        self.inflight.push_back((seq, pkt));
        self.next_seq = self.next_seq.wrapping_add(1);
        Ok(())
    }

    /// Process a cumulative ACK (`cum_ack` = receiver's next expected seq).
    /// Returns the number of packets newly acknowledged.
    pub fn on_ack(&mut self, cum_ack: u32) -> usize {
        let mut freed = 0;
        while let Some(&(seq, _)) = self.inflight.front() {
            if seq_before(seq, cum_ack) {
                self.inflight.pop_front();
                freed += 1;
            } else {
                break;
            }
        }
        freed
    }

    /// Packets currently unacknowledged (oldest first) — the retransmission
    /// set on timeout.
    pub fn unacked(&self) -> impl Iterator<Item = &Bytes> + '_ {
        self.inflight.iter().map(|(_, p)| p)
    }

    /// Number of unacked packets.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }
}

/// Receiver verdict for an arriving data packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GbnVerdict {
    /// Next expected packet: deliver it.
    Accept,
    /// Already delivered (retransmission overlap): discard, but re-ACK.
    Duplicate,
    /// A gap precedes it (go-back-N never buffers): discard, re-ACK.
    OutOfOrder,
}

/// Receiver half of one NIC-pair stream.
pub struct GbnReceiver {
    expected: u32,
}

impl GbnReceiver {
    /// New stream.
    pub fn new() -> Self {
        GbnReceiver { expected: 0 }
    }

    /// Classify an arriving sequence number and advance on accept.
    pub fn on_data(&mut self, seq: u32) -> GbnVerdict {
        if seq == self.expected {
            self.expected = self.expected.wrapping_add(1);
            GbnVerdict::Accept
        } else if seq_before(seq, self.expected) {
            GbnVerdict::Duplicate
        } else {
            GbnVerdict::OutOfOrder
        }
    }

    /// Cumulative ACK value to send (next expected seq).
    pub fn cum_ack(&self) -> u32 {
        self.expected
    }
}

impl Default for GbnReceiver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(i: u32) -> Bytes {
        Bytes::from(i.to_le_bytes().to_vec())
    }

    /// Decode a test packet's payload without slice-length unwraps.
    fn val(b: &Bytes) -> u32 {
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    #[test]
    fn window_limits_inflight() {
        let mut s = GbnSender::new(2);
        assert!(s.can_send());
        s.record_sent(0, pkt(0)).expect("in window");
        s.record_sent(1, pkt(1)).expect("in window");
        assert!(!s.can_send());
        assert_eq!(s.on_ack(1), 1); // acks seq 0
        assert!(s.can_send());
        s.record_sent(2, pkt(2)).expect("in window");
        assert_eq!(s.in_flight(), 2);
    }

    #[test]
    fn record_sent_reports_violations_instead_of_panicking() {
        let mut s = GbnSender::new(1);
        assert_eq!(
            s.record_sent(5, pkt(5)),
            Err(GbnError::OutOfOrderSeq {
                expected: 0,
                got: 5
            })
        );
        s.record_sent(0, pkt(0)).expect("in window");
        assert_eq!(
            s.record_sent(1, pkt(1)),
            Err(GbnError::WindowOverflow { window: 1 })
        );
        // A failed record leaves the stream state untouched.
        assert_eq!(s.in_flight(), 1);
        assert_eq!(s.next_seq(), 1);
        assert!(GbnError::WindowOverflow { window: 1 }
            .reason()
            .contains("window overflow"));
    }

    #[test]
    fn cumulative_ack_frees_prefix() {
        let mut s = GbnSender::new(8);
        for i in 0..5 {
            s.record_sent(i, pkt(i)).expect("in window");
        }
        assert_eq!(s.on_ack(3), 3);
        assert_eq!(s.in_flight(), 2);
        // Stale ack is a no-op.
        assert_eq!(s.on_ack(1), 0);
        assert_eq!(s.on_ack(5), 2);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn unacked_returns_retransmission_set_in_order() {
        let mut s = GbnSender::new(8);
        for i in 0..4 {
            s.record_sent(i, pkt(i)).expect("in window");
        }
        s.on_ack(2);
        let set: Vec<u32> = s.unacked().map(val).collect();
        assert_eq!(set, vec![2, 3]);
    }

    #[test]
    fn receiver_in_order_stream() {
        let mut r = GbnReceiver::new();
        for i in 0..5 {
            assert_eq!(r.on_data(i), GbnVerdict::Accept);
            assert_eq!(r.cum_ack(), i + 1);
        }
    }

    #[test]
    fn receiver_rejects_gaps_and_dups() {
        let mut r = GbnReceiver::new();
        assert_eq!(r.on_data(0), GbnVerdict::Accept);
        assert_eq!(r.on_data(2), GbnVerdict::OutOfOrder); // gap: 1 missing
        assert_eq!(r.on_data(0), GbnVerdict::Duplicate);
        assert_eq!(r.on_data(1), GbnVerdict::Accept);
        assert_eq!(r.on_data(2), GbnVerdict::Accept);
    }

    #[test]
    fn wraparound_sequences() {
        let mut s = GbnSender::new(4);
        s.next_seq = u32::MAX;
        s.record_sent(u32::MAX, pkt(1)).expect("in window");
        s.record_sent(0, pkt(2)).expect("in window");
        assert_eq!(s.in_flight(), 2);
        assert_eq!(s.on_ack(1), 2, "ack past the wrap frees both");

        let mut r = GbnReceiver { expected: u32::MAX };
        assert_eq!(r.on_data(u32::MAX), GbnVerdict::Accept);
        assert_eq!(r.on_data(0), GbnVerdict::Accept);
        assert_eq!(r.on_data(u32::MAX), GbnVerdict::Duplicate);
    }

    #[test]
    fn lockstep_simulation_with_losses_delivers_everything_in_order() {
        // Simple abstract channel: drop every 3rd packet, retransmit on
        // "timeout" (when the sender notices no progress).
        let mut s = GbnSender::new(4);
        let mut r = GbnReceiver::new();
        let mut delivered: Vec<u32> = Vec::new();
        let mut to_send: VecDeque<u32> = (0..20).collect();
        let mut drop_tick = 0u32;
        let mut steps = 0;
        while delivered.len() < 20 {
            steps += 1;
            assert!(steps < 10_000, "no progress");
            // Fill window.
            while s.can_send() {
                let Some(v) = to_send.pop_front() else { break };
                let seq = s.next_seq();
                s.record_sent(seq, pkt(v)).expect("in window");
            }
            // "Transmit" the whole unacked window (models a timeout burst);
            // drop some deterministically.
            let window: Vec<(u32, u32)> = s
                .unacked()
                .enumerate()
                .map(|(i, b)| (i as u32, val(b)))
                .collect();
            // First unacked seq = next_seq - inflight.
            let base = s.next_seq().wrapping_sub(s.in_flight() as u32);
            for (i, v) in window {
                drop_tick += 1;
                if drop_tick.is_multiple_of(3) {
                    continue; // dropped
                }
                let seq = base.wrapping_add(i);
                if r.on_data(seq) == GbnVerdict::Accept {
                    delivered.push(v);
                }
            }
            s.on_ack(r.cum_ack());
        }
        assert_eq!(delivered, (0..20).collect::<Vec<u32>>());
    }

    mod props {
        use super::super::{seq_before, GbnReceiver, GbnSender, GbnVerdict};
        use super::{pkt, val};
        use proptest::prelude::*;

        proptest! {
            /// `seq_before` must agree with ordinary `<` whenever the two
            /// numbers are within half the sequence space of each other —
            /// the serial-arithmetic contract.
            #[test]
            fn seq_before_matches_linear_order_at_small_distance(
                base in any::<u32>(),
                dist in 1u32..(1 << 30),
            ) {
                let later = base.wrapping_add(dist);
                prop_assert!(seq_before(base, later));
                prop_assert!(!seq_before(later, base));
                prop_assert!(!seq_before(base, base));
            }

            /// Go-back-N with a sequence space that starts just under
            /// `u32::MAX` and always wraps through it mid-run, under an
            /// arbitrary loss pattern: every payload still arrives exactly
            /// once, in order. Starting state is private, which is why this
            /// property lives in the unit-test module rather than
            /// `tests/proptests.rs`.
            #[test]
            fn gbn_survives_sequence_wraparound_under_losses(
                start_offset in 0u32..32,
                n in 40usize..80, // > start_offset + window, so the run must cross u32::MAX
                loss_pattern in prop::collection::vec(any::<bool>(), 0..800),
            ) {
                let start = u32::MAX - start_offset;
                let mut tx = GbnSender::new(8);
                tx.next_seq = start;
                let mut rx = GbnReceiver { expected: start };
                let mut delivered: Vec<u32> = Vec::new();
                let mut next_to_queue = 0u32;
                let mut losses = loss_pattern.into_iter();
                let mut rounds = 0;
                while delivered.len() < n {
                    rounds += 1;
                    prop_assert!(rounds < 10_000, "no progress");
                    while tx.can_send() && (next_to_queue as usize) < n {
                        let seq = tx.next_seq();
                        tx.record_sent(seq, pkt(next_to_queue)).expect("in window");
                        next_to_queue += 1;
                    }
                    // Timeout burst: retransmit the whole unacked window,
                    // losing whatever the pattern says.
                    let base = tx.next_seq().wrapping_sub(tx.in_flight() as u32);
                    let window: Vec<(u32, u32)> = tx
                        .unacked()
                        .enumerate()
                        .map(|(i, b)| (base.wrapping_add(i as u32), val(b)))
                        .collect();
                    for (seq, val) in window {
                        if losses.next().unwrap_or(false) {
                            continue;
                        }
                        if rx.on_data(seq) == GbnVerdict::Accept {
                            delivered.push(val);
                        }
                    }
                    tx.on_ack(rx.cum_ack());
                }
                // The run crossed the wrap point...
                prop_assert!(seq_before(u32::MAX, tx.next_seq()));
                // ...and still delivered everything exactly once, in order.
                prop_assert_eq!(delivered, (0..n as u32).collect::<Vec<u32>>());
            }
        }
    }
}
