//! Link-level reliability: go-back-N between NIC pairs.
//!
//! The paper's MCP "performs data checking and guarantees reliable
//! transmission in the on-card control program" — about 5.65 µs of the
//! one-way time — and "performs re-transmission when timeout". We implement
//! a classic go-back-N: per-destination sequence numbers, a bounded window
//! of unacked packets buffered in NIC SRAM, cumulative ACKs, and full-window
//! retransmission on timeout. The receiver accepts only the next expected
//! sequence number, which also guarantees in-order fragment delivery per
//! NIC pair (BCL relies on this for reassembly-free receives).
//!
//! This module is pure state logic (no simulator types) so the protocol can
//! be exhaustively unit- and property-tested; `mcp.rs` wires it to timers
//! and the fabric.

use std::collections::VecDeque;

use bytes::Bytes;

/// Serial-number comparison (RFC 1982 style): true when `a` precedes `b`
/// in the circular u32 sequence space. The signed interpretation of the
/// wrapped difference gives the right answer whenever the live sequence
/// numbers span less than 2³¹ — go-back-N windows are a handful of
/// packets, so this holds by nine orders of magnitude.
#[inline]
fn seq_before(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// A violated go-back-N sender invariant. The firmware never panics on
/// these: `mcp.rs` converts them into counted protocol errors that trip
/// the flight recorder and abandon the offending send (the same treatment
/// the MCP state machine gives its own inconsistencies).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GbnError {
    /// `record_sent` was handed a sequence number other than
    /// [`GbnSender::next_seq`].
    OutOfOrderSeq {
        /// The sequence number the stream expected next.
        expected: u32,
        /// The sequence number actually recorded.
        got: u32,
    },
    /// `record_sent` was called with the window already full.
    WindowOverflow {
        /// The configured window size (packets).
        window: u32,
    },
}

impl GbnError {
    /// Stable reason string for counters / flight-recorder banners.
    pub fn reason(&self) -> &'static str {
        match self {
            GbnError::OutOfOrderSeq { .. } => "go-back-N sender: out-of-order record_sent",
            GbnError::WindowOverflow { .. } => "go-back-N sender: window overflow",
        }
    }
}

/// Sender half of one NIC-pair stream.
///
/// ```
/// use suca_bcl::reliable::{GbnSender, GbnReceiver, GbnVerdict};
/// use bytes::Bytes;
///
/// let mut tx = GbnSender::new(4);
/// let mut rx = GbnReceiver::new();
/// let seq = tx.next_seq();
/// tx.record_sent(seq, Bytes::from_static(b"frag")).expect("in window");
/// assert_eq!(rx.on_data(seq), GbnVerdict::Accept);
/// assert_eq!(tx.on_ack(rx.cum_ack()), 1); // window slot freed
/// ```
pub struct GbnSender {
    next_seq: u32,
    window: u32,
    /// Unacked packets in seq order: `(seq, encoded packet)`.
    inflight: VecDeque<(u32, Bytes)>,
}

impl GbnSender {
    /// New stream with the given window (packets).
    pub fn new(window: u32) -> Self {
        assert!(window > 0);
        GbnSender {
            next_seq: 0,
            window,
            inflight: VecDeque::new(),
        }
    }

    /// True if the window has room for another packet.
    pub fn can_send(&self) -> bool {
        (self.inflight.len() as u32) < self.window
    }

    /// Sequence number the next packet must carry.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// Record a packet as sent (it must carry [`GbnSender::next_seq`]).
    /// The encoded bytes are retained for retransmission. A violated
    /// precondition is reported instead of panicking, so firmware can turn
    /// it into a counted protocol error.
    pub fn record_sent(&mut self, seq: u32, pkt: Bytes) -> Result<(), GbnError> {
        if seq != self.next_seq {
            return Err(GbnError::OutOfOrderSeq {
                expected: self.next_seq,
                got: seq,
            });
        }
        if !self.can_send() {
            return Err(GbnError::WindowOverflow {
                window: self.window,
            });
        }
        self.inflight.push_back((seq, pkt));
        self.next_seq = self.next_seq.wrapping_add(1);
        Ok(())
    }

    /// Process a cumulative ACK (`cum_ack` = receiver's next expected seq).
    /// Returns the number of packets newly acknowledged.
    pub fn on_ack(&mut self, cum_ack: u32) -> usize {
        let mut freed = 0;
        while let Some(&(seq, _)) = self.inflight.front() {
            if seq_before(seq, cum_ack) {
                self.inflight.pop_front();
                freed += 1;
            } else {
                break;
            }
        }
        freed
    }

    /// Packets currently unacknowledged (oldest first) — the retransmission
    /// set on timeout.
    pub fn unacked(&self) -> impl Iterator<Item = &Bytes> + '_ {
        self.inflight.iter().map(|(_, p)| p)
    }

    /// Number of unacked packets.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }
}

/// Receiver verdict for an arriving data packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GbnVerdict {
    /// Next expected packet: deliver it.
    Accept,
    /// Already delivered (retransmission overlap): discard, but re-ACK.
    Duplicate,
    /// A gap precedes it (go-back-N never buffers): discard, re-ACK.
    OutOfOrder,
}

/// Receiver half of one NIC-pair stream.
pub struct GbnReceiver {
    expected: u32,
}

impl GbnReceiver {
    /// New stream.
    pub fn new() -> Self {
        GbnReceiver { expected: 0 }
    }

    /// Classify an arriving sequence number and advance on accept.
    pub fn on_data(&mut self, seq: u32) -> GbnVerdict {
        if seq == self.expected {
            self.expected = self.expected.wrapping_add(1);
            GbnVerdict::Accept
        } else if seq_before(seq, self.expected) {
            GbnVerdict::Duplicate
        } else {
            GbnVerdict::OutOfOrder
        }
    }

    /// Cumulative ACK value to send (next expected seq).
    pub fn cum_ack(&self) -> u32 {
        self.expected
    }
}

impl Default for GbnReceiver {
    fn default() -> Self {
        Self::new()
    }
}

/// Serial comparison on the 16-bit epoch space: true when `a` is a *newer*
/// epoch than `b`. Epochs only ever step forward by one per failover or NIC
/// reset, so the half-space contract of serial arithmetic is never close to
/// violated.
#[inline]
pub fn epoch_after(a: u16, b: u16) -> bool {
    (a.wrapping_sub(b) as i16) > 0
}

/// Sender half of an *epoch-stamped* go-back-N stream.
///
/// The epoch names one incarnation of the stream. When the kernel fails a
/// connection over to the other rail (or re-initializes a reset NIC) it
/// bumps the epoch and runs a resync handshake before any data moves again:
///
/// 1. [`EpochSender::begin_resync`] parks the old stream and opens a fresh
///    one under `epoch + 1`; the caller transmits an `EpochSync` control
///    packet and pauses data until the handshake completes.
/// 2. The receiver adopts the new epoch and answers with its cumulative ack
///    for the *old* stream ([`EpochReceiver::on_sync`]).
/// 3. [`EpochSender::on_sync_ack`] drops every packet that ack covers and
///    hands back only the genuinely undelivered tail, which the caller
///    re-stamps with fresh sequence numbers under the new epoch.
///
/// Because the receiver reports exactly what it delivered, nothing is sent
/// twice and nothing is skipped — exactly-once delivery holds across the
/// cutover (property-tested in `tests/proptests.rs`).
pub struct EpochSender {
    epoch: u16,
    gbn: GbnSender,
    window: u32,
    /// The pre-resync stream, kept until the handshake tells us which of
    /// its packets were actually delivered.
    pending: Option<GbnSender>,
    /// Epoch the parked stream was live under — carried in `EpochSync` so
    /// the receiver reconciles *that* stream, not whatever interim epoch it
    /// happens to have adopted (repeated failovers with a lost sync-ack
    /// would otherwise replay already-delivered packets).
    parked_epoch: u16,
}

impl EpochSender {
    /// New stream at epoch 0.
    pub fn new(window: u32) -> Self {
        Self::with_epoch(window, 0)
    }

    /// New stream at a given epoch — used when the kernel re-creates NIC
    /// state after a reset: connection epochs live host-side (the paper's
    /// trust model keeps connection state in the OS), so they survive the
    /// SRAM wipe and restart one past their old value.
    pub fn with_epoch(window: u32, epoch: u16) -> Self {
        EpochSender {
            epoch,
            gbn: GbnSender::new(window),
            window,
            pending: None,
            parked_epoch: epoch,
        }
    }

    /// Current epoch (stamped into every outgoing header).
    pub fn epoch(&self) -> u16 {
        self.epoch
    }

    /// True while a resync handshake is outstanding — no data may be sent.
    pub fn is_syncing(&self) -> bool {
        self.pending.is_some()
    }

    /// True if the window has room and no handshake is outstanding.
    pub fn can_send(&self) -> bool {
        !self.is_syncing() && self.gbn.can_send()
    }

    /// Sequence number the next packet must carry.
    pub fn next_seq(&self) -> u32 {
        self.gbn.next_seq()
    }

    /// Record a packet as sent on the current epoch's stream.
    pub fn record_sent(&mut self, seq: u32, pkt: Bytes) -> Result<(), GbnError> {
        self.gbn.record_sent(seq, pkt)
    }

    /// Process a cumulative ACK stamped with `epoch`. Returns the number of
    /// packets freed, or `None` when the ack belongs to a stale epoch (the
    /// caller counts and drops it).
    pub fn on_ack(&mut self, epoch: u16, cum_ack: u32) -> Option<usize> {
        if epoch != self.epoch || self.is_syncing() {
            return None;
        }
        Some(self.gbn.on_ack(cum_ack))
    }

    /// Open a new epoch: park the current stream for reconciliation and
    /// start a fresh one. Returns the new epoch to carry in the `EpochSync`
    /// packet. Calling this while a handshake is already outstanding keeps
    /// the originally parked stream (the interim stream is empty — data is
    /// paused during a handshake) and just bumps the epoch again.
    pub fn begin_resync(&mut self) -> u16 {
        let old_epoch = self.epoch;
        self.epoch = self.epoch.wrapping_add(1);
        let fresh = GbnSender::new(self.window);
        let old = std::mem::replace(&mut self.gbn, fresh);
        if self.pending.is_none() {
            self.pending = Some(old);
            self.parked_epoch = old_epoch;
        }
        self.epoch
    }

    /// Epoch of the parked stream — stamp this into the `EpochSync` packet
    /// so the receiver answers with the right stream's cumulative ack.
    pub fn parked_epoch(&self) -> u16 {
        self.parked_epoch
    }

    /// Complete the handshake: the receiver delivered everything before
    /// `old_cum` on the parked stream. Returns the undelivered packets (in
    /// order, still carrying their *old* headers — the caller re-stamps seq
    /// and epoch and records them on the fresh stream), or `None` when the
    /// ack is stale. A duplicate sync-ack returns `Some(empty)`.
    pub fn on_sync_ack(&mut self, epoch: u16, old_cum: u32) -> Option<Vec<Bytes>> {
        if epoch != self.epoch {
            return None;
        }
        let Some(mut old) = self.pending.take() else {
            return Some(Vec::new()); // duplicate ack: already reconciled
        };
        old.on_ack(old_cum);
        Some(old.unacked().cloned().collect())
    }

    /// Packets currently unacknowledged on the live stream (oldest first).
    pub fn unacked(&self) -> impl Iterator<Item = &Bytes> + '_ {
        self.gbn.unacked()
    }

    /// Number of unacked packets on the live stream.
    pub fn in_flight(&self) -> usize {
        self.gbn.in_flight()
    }
}

/// Receiver verdict for an epoch-stamped data packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EpochVerdict {
    /// Packet belongs to the current epoch: the inner go-back-N verdict.
    Gbn(GbnVerdict),
    /// Packet carries an epoch older than the adopted one: count and drop
    /// (it was in flight on a path that has since been failed over).
    Stale,
}

/// How many abandoned-stream cumulative acks an [`EpochReceiver`] keeps.
/// One handshake is outstanding per peer at a time, so a handful covers
/// even pathological flap storms.
const ABANDONED_CAP: usize = 8;

/// Receiver half of an epoch-stamped go-back-N stream.
pub struct EpochReceiver {
    epoch: u16,
    gbn: GbnReceiver,
    /// Cumulative acks of streams abandoned at epoch adoptions, newest
    /// last, keyed by the epoch each ran under. An `EpochSync` names the
    /// epoch of the stream the sender parked; answering with *that*
    /// stream's cum — not whichever interim epoch we last abandoned —
    /// keeps repeated failovers with lost sync-acks from replaying
    /// already-delivered packets or freeing undelivered ones.
    abandoned: Vec<(u16, u32)>,
}

impl EpochReceiver {
    /// New stream at epoch 0.
    pub fn new() -> Self {
        EpochReceiver {
            epoch: 0,
            gbn: GbnReceiver::new(),
            abandoned: Vec::new(),
        }
    }

    /// Current epoch (stamped into outgoing ACKs).
    pub fn epoch(&self) -> u16 {
        self.epoch
    }

    /// Classify an arriving data packet. A *newer* epoch on a data packet
    /// adopts it implicitly (a reset NIC restarts its stream from seq 0
    /// with no unacked backlog to reconcile, so it never sends `EpochSync`);
    /// an older epoch is stale.
    pub fn on_data(&mut self, epoch: u16, seq: u32) -> EpochVerdict {
        if epoch == self.epoch {
            return EpochVerdict::Gbn(self.gbn.on_data(seq));
        }
        if epoch_after(epoch, self.epoch) {
            self.adopt(epoch);
            return EpochVerdict::Gbn(self.gbn.on_data(seq));
        }
        EpochVerdict::Stale
    }

    /// Process an `EpochSync` request asking to reconcile the stream that
    /// ran under epoch `parked`. Returns that stream's cumulative ack to
    /// put in the `EpochSyncAck`, or `None` when the request itself is
    /// stale. A retransmitted request (same epoch) replays the original
    /// answer; a parked epoch we never saw data in answers 0 (nothing was
    /// delivered, so the sender replays its whole tail).
    pub fn on_sync(&mut self, epoch: u16, parked: u16) -> Option<u32> {
        if epoch_after(epoch, self.epoch) {
            self.adopt(epoch);
        } else if epoch != self.epoch {
            return None;
        }
        Some(
            self.abandoned
                .iter()
                .rev()
                .find(|(e, _)| *e == parked)
                .map_or(0, |(_, cum)| *cum),
        )
    }

    fn adopt(&mut self, epoch: u16) {
        self.abandoned.push((self.epoch, self.gbn.cum_ack()));
        if self.abandoned.len() > ABANDONED_CAP {
            self.abandoned.remove(0);
        }
        self.epoch = epoch;
        self.gbn = GbnReceiver::new();
    }

    /// Cumulative ACK value for the current epoch's stream.
    pub fn cum_ack(&self) -> u32 {
        self.gbn.cum_ack()
    }
}

impl Default for EpochReceiver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(i: u32) -> Bytes {
        Bytes::from(i.to_le_bytes().to_vec())
    }

    /// Decode a test packet's payload without slice-length unwraps.
    fn val(b: &Bytes) -> u32 {
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    #[test]
    fn window_limits_inflight() {
        let mut s = GbnSender::new(2);
        assert!(s.can_send());
        s.record_sent(0, pkt(0)).expect("in window");
        s.record_sent(1, pkt(1)).expect("in window");
        assert!(!s.can_send());
        assert_eq!(s.on_ack(1), 1); // acks seq 0
        assert!(s.can_send());
        s.record_sent(2, pkt(2)).expect("in window");
        assert_eq!(s.in_flight(), 2);
    }

    #[test]
    fn record_sent_reports_violations_instead_of_panicking() {
        let mut s = GbnSender::new(1);
        assert_eq!(
            s.record_sent(5, pkt(5)),
            Err(GbnError::OutOfOrderSeq {
                expected: 0,
                got: 5
            })
        );
        s.record_sent(0, pkt(0)).expect("in window");
        assert_eq!(
            s.record_sent(1, pkt(1)),
            Err(GbnError::WindowOverflow { window: 1 })
        );
        // A failed record leaves the stream state untouched.
        assert_eq!(s.in_flight(), 1);
        assert_eq!(s.next_seq(), 1);
        assert!(GbnError::WindowOverflow { window: 1 }
            .reason()
            .contains("window overflow"));
    }

    #[test]
    fn cumulative_ack_frees_prefix() {
        let mut s = GbnSender::new(8);
        for i in 0..5 {
            s.record_sent(i, pkt(i)).expect("in window");
        }
        assert_eq!(s.on_ack(3), 3);
        assert_eq!(s.in_flight(), 2);
        // Stale ack is a no-op.
        assert_eq!(s.on_ack(1), 0);
        assert_eq!(s.on_ack(5), 2);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn unacked_returns_retransmission_set_in_order() {
        let mut s = GbnSender::new(8);
        for i in 0..4 {
            s.record_sent(i, pkt(i)).expect("in window");
        }
        s.on_ack(2);
        let set: Vec<u32> = s.unacked().map(val).collect();
        assert_eq!(set, vec![2, 3]);
    }

    #[test]
    fn receiver_in_order_stream() {
        let mut r = GbnReceiver::new();
        for i in 0..5 {
            assert_eq!(r.on_data(i), GbnVerdict::Accept);
            assert_eq!(r.cum_ack(), i + 1);
        }
    }

    #[test]
    fn receiver_rejects_gaps_and_dups() {
        let mut r = GbnReceiver::new();
        assert_eq!(r.on_data(0), GbnVerdict::Accept);
        assert_eq!(r.on_data(2), GbnVerdict::OutOfOrder); // gap: 1 missing
        assert_eq!(r.on_data(0), GbnVerdict::Duplicate);
        assert_eq!(r.on_data(1), GbnVerdict::Accept);
        assert_eq!(r.on_data(2), GbnVerdict::Accept);
    }

    #[test]
    fn wraparound_sequences() {
        let mut s = GbnSender::new(4);
        s.next_seq = u32::MAX;
        s.record_sent(u32::MAX, pkt(1)).expect("in window");
        s.record_sent(0, pkt(2)).expect("in window");
        assert_eq!(s.in_flight(), 2);
        assert_eq!(s.on_ack(1), 2, "ack past the wrap frees both");

        let mut r = GbnReceiver { expected: u32::MAX };
        assert_eq!(r.on_data(u32::MAX), GbnVerdict::Accept);
        assert_eq!(r.on_data(0), GbnVerdict::Accept);
        assert_eq!(r.on_data(u32::MAX), GbnVerdict::Duplicate);
    }

    #[test]
    fn lockstep_simulation_with_losses_delivers_everything_in_order() {
        // Simple abstract channel: drop every 3rd packet, retransmit on
        // "timeout" (when the sender notices no progress).
        let mut s = GbnSender::new(4);
        let mut r = GbnReceiver::new();
        let mut delivered: Vec<u32> = Vec::new();
        let mut to_send: VecDeque<u32> = (0..20).collect();
        let mut drop_tick = 0u32;
        let mut steps = 0;
        while delivered.len() < 20 {
            steps += 1;
            assert!(steps < 10_000, "no progress");
            // Fill window.
            while s.can_send() {
                let Some(v) = to_send.pop_front() else { break };
                let seq = s.next_seq();
                s.record_sent(seq, pkt(v)).expect("in window");
            }
            // "Transmit" the whole unacked window (models a timeout burst);
            // drop some deterministically.
            let window: Vec<(u32, u32)> = s
                .unacked()
                .enumerate()
                .map(|(i, b)| (i as u32, val(b)))
                .collect();
            // First unacked seq = next_seq - inflight.
            let base = s.next_seq().wrapping_sub(s.in_flight() as u32);
            for (i, v) in window {
                drop_tick += 1;
                if drop_tick.is_multiple_of(3) {
                    continue; // dropped
                }
                let seq = base.wrapping_add(i);
                if r.on_data(seq) == GbnVerdict::Accept {
                    delivered.push(v);
                }
            }
            s.on_ack(r.cum_ack());
        }
        assert_eq!(delivered, (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn epoch_after_is_serial() {
        assert!(epoch_after(1, 0));
        assert!(!epoch_after(0, 1));
        assert!(!epoch_after(7, 7));
        assert!(epoch_after(0, u16::MAX), "wraps");
    }

    #[test]
    fn epoch_resync_retransmits_only_the_undelivered_tail() {
        let mut tx = EpochSender::new(8);
        let mut rx = EpochReceiver::new();
        // Send 5 packets; receiver gets the first 3, the ack is "lost".
        for i in 0..5 {
            let seq = tx.next_seq();
            tx.record_sent(seq, pkt(i)).expect("in window");
            if i < 3 {
                assert_eq!(rx.on_data(0, seq), EpochVerdict::Gbn(GbnVerdict::Accept));
            }
        }
        // Failover: handshake tells the sender packets 0..3 were delivered.
        let e = tx.begin_resync();
        assert!(tx.is_syncing() && !tx.can_send());
        let cum = rx.on_sync(e, tx.parked_epoch()).expect("fresh sync");
        assert_eq!(cum, 3);
        let resend = tx.on_sync_ack(e, cum).expect("matching epoch");
        assert_eq!(resend.iter().map(val).collect::<Vec<_>>(), vec![3, 4]);
        assert!(!tx.is_syncing() && tx.can_send());
        // Re-stamp under the new epoch; the receiver's fresh stream accepts.
        for (i, p) in resend.into_iter().enumerate() {
            let seq = tx.next_seq();
            tx.record_sent(seq, p).expect("fits: old tail <= window");
            assert_eq!(rx.on_data(e, seq), EpochVerdict::Gbn(GbnVerdict::Accept));
            assert_eq!(rx.cum_ack(), i as u32 + 1);
        }
        assert_eq!(tx.on_ack(e, rx.cum_ack()), Some(2));
        assert_eq!(tx.in_flight(), 0);
    }

    #[test]
    fn stale_epoch_traffic_is_flagged_not_processed() {
        let mut tx = EpochSender::new(4);
        let mut rx = EpochReceiver::new();
        let seq = tx.next_seq();
        tx.record_sent(seq, pkt(0)).expect("in window");
        let e = tx.begin_resync();
        let cum = rx.on_sync(e, tx.parked_epoch()).expect("adopts");
        // Old-epoch data and acks floating on the dead rail are stale now.
        assert_eq!(rx.on_data(0, 99), EpochVerdict::Stale);
        assert_eq!(tx.on_ack(0, 1), None, "stale ack while syncing");
        assert_eq!(tx.on_sync_ack(0, 0), None, "stale sync-ack");
        let resend = tx.on_sync_ack(e, cum).expect("real sync-ack");
        assert_eq!(resend.len(), 1);
        assert_eq!(tx.on_ack(0, 1), None, "stale ack after resync");
        // A duplicate sync-ack is idempotent.
        assert_eq!(tx.on_sync_ack(e, cum), Some(Vec::new()));
    }

    #[test]
    fn retransmitted_sync_replays_the_original_answer() {
        let mut rx = EpochReceiver::new();
        for s in 0..4 {
            rx.on_data(0, s);
        }
        assert_eq!(rx.on_sync(1, 0), Some(4));
        // New-epoch traffic lands before the duplicate sync arrives.
        assert_eq!(rx.on_data(1, 0), EpochVerdict::Gbn(GbnVerdict::Accept));
        assert_eq!(rx.on_sync(1, 0), Some(4), "replayed, not re-captured");
        assert_eq!(rx.on_sync(0, 0), None, "stale sync");
    }

    #[test]
    fn lost_sync_ack_then_second_failover_still_reconciles_the_parked_stream() {
        // Receiver saw 3 of 5 packets on epoch 0. Failover 1: the sync
        // arrives (rx adopts epoch 1) but the sync-ack is lost. Failover 2
        // before recovery: the sync for epoch 2 names the *parked* epoch 0,
        // so the receiver must answer with epoch 0's cum (3), not the empty
        // interim epoch-1 stream's 0 — otherwise packets 0..3 re-deliver.
        let mut tx = EpochSender::new(8);
        let mut rx = EpochReceiver::new();
        for i in 0..5 {
            let seq = tx.next_seq();
            tx.record_sent(seq, pkt(i)).expect("in window");
            if i < 3 {
                rx.on_data(0, seq);
            }
        }
        let e1 = tx.begin_resync();
        assert_eq!(rx.on_sync(e1, tx.parked_epoch()), Some(3)); // ack lost
        let e2 = tx.begin_resync();
        assert_eq!(tx.parked_epoch(), 0, "original stream stays parked");
        let cum = rx.on_sync(e2, tx.parked_epoch()).expect("adopts e2");
        assert_eq!(cum, 3, "answers for the parked stream, not the interim");
        let resend = tx.on_sync_ack(e2, cum).expect("completes");
        assert_eq!(resend.iter().map(val).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn reset_nic_stream_is_adopted_implicitly_by_data() {
        let mut rx = EpochReceiver::new();
        for s in 0..7 {
            rx.on_data(2, s); // mid-stream at epoch 2
        }
        // Sender NIC reset: kernel restarts the stream at epoch 3, seq 0.
        let mut tx = EpochSender::with_epoch(4, 3);
        assert_eq!(tx.epoch(), 3);
        let seq = tx.next_seq();
        tx.record_sent(seq, pkt(0)).expect("in window");
        assert_eq!(rx.on_data(3, seq), EpochVerdict::Gbn(GbnVerdict::Accept));
        assert_eq!(tx.on_ack(3, rx.cum_ack()), Some(1));
    }

    #[test]
    fn double_failover_while_syncing_keeps_the_parked_stream() {
        let mut tx = EpochSender::new(4);
        for i in 0..3 {
            let seq = tx.next_seq();
            tx.record_sent(seq, pkt(i)).expect("in window");
        }
        let e1 = tx.begin_resync();
        let e2 = tx.begin_resync(); // second failover before the ack
        assert_eq!(e2, e1 + 1);
        let resend = tx.on_sync_ack(e2, 1).expect("matches current epoch");
        assert_eq!(resend.iter().map(val).collect::<Vec<_>>(), vec![1, 2]);
    }

    mod props {
        use super::super::{seq_before, GbnReceiver, GbnSender, GbnVerdict};
        use super::{pkt, val};
        use proptest::prelude::*;

        proptest! {
            /// `seq_before` must agree with ordinary `<` whenever the two
            /// numbers are within half the sequence space of each other —
            /// the serial-arithmetic contract.
            #[test]
            fn seq_before_matches_linear_order_at_small_distance(
                base in any::<u32>(),
                dist in 1u32..(1 << 30),
            ) {
                let later = base.wrapping_add(dist);
                prop_assert!(seq_before(base, later));
                prop_assert!(!seq_before(later, base));
                prop_assert!(!seq_before(base, base));
            }

            /// Go-back-N with a sequence space that starts just under
            /// `u32::MAX` and always wraps through it mid-run, under an
            /// arbitrary loss pattern: every payload still arrives exactly
            /// once, in order. Starting state is private, which is why this
            /// property lives in the unit-test module rather than
            /// `tests/proptests.rs`.
            #[test]
            fn gbn_survives_sequence_wraparound_under_losses(
                start_offset in 0u32..32,
                n in 40usize..80, // > start_offset + window, so the run must cross u32::MAX
                loss_pattern in prop::collection::vec(any::<bool>(), 0..800),
            ) {
                let start = u32::MAX - start_offset;
                let mut tx = GbnSender::new(8);
                tx.next_seq = start;
                let mut rx = GbnReceiver { expected: start };
                let mut delivered: Vec<u32> = Vec::new();
                let mut next_to_queue = 0u32;
                let mut losses = loss_pattern.into_iter();
                let mut rounds = 0;
                while delivered.len() < n {
                    rounds += 1;
                    prop_assert!(rounds < 10_000, "no progress");
                    while tx.can_send() && (next_to_queue as usize) < n {
                        let seq = tx.next_seq();
                        tx.record_sent(seq, pkt(next_to_queue)).expect("in window");
                        next_to_queue += 1;
                    }
                    // Timeout burst: retransmit the whole unacked window,
                    // losing whatever the pattern says.
                    let base = tx.next_seq().wrapping_sub(tx.in_flight() as u32);
                    let window: Vec<(u32, u32)> = tx
                        .unacked()
                        .enumerate()
                        .map(|(i, b)| (base.wrapping_add(i as u32), val(b)))
                        .collect();
                    for (seq, val) in window {
                        if losses.next().unwrap_or(false) {
                            continue;
                        }
                        if rx.on_data(seq) == GbnVerdict::Accept {
                            delivered.push(val);
                        }
                    }
                    tx.on_ack(rx.cum_ack());
                }
                // The run crossed the wrap point...
                prop_assert!(seq_before(u32::MAX, tx.next_seq()));
                // ...and still delivered everything exactly once, in order.
                prop_assert_eq!(delivered, (0..n as u32).collect::<Vec<u32>>());
            }
        }
    }
}
