//! Host-memory structures shared between the NIC and the user library.
//!
//! The defining trick of the semi-user-level receive path: completion events
//! are DMA'd by the NIC **into user-space memory**, and the process polls
//! them there — no trap, no interrupt. Likewise the system-channel buffer
//! pool's free list lives in host memory where the library returns buffers
//! and the NIC (via DMA reads) claims them.
//!
//! We model the queue *entries* as typed values rather than raw bytes (the
//! payloads themselves live in simulated memory); the DMA cost of writing an
//! event is charged by the MCP before an entry appears here.

use std::collections::VecDeque;

use parking_lot::Mutex;

use suca_mem::PhysAddr;
use suca_sim::{ActorCtx, Gauge, Signal, Sim};

use crate::port::{RecvEvent, SendEvent};

/// Per-port completion queues, resident in the port owner's user memory.
pub struct UserQueues {
    recv: Mutex<VecDeque<RecvEvent>>,
    send: Mutex<VecDeque<SendEvent>>,
    /// Depth gauges (cluster-wide, high-water tracked): an unbounded model
    /// queue standing in for a fixed ring, so the high-water mark tells us
    /// how deep a real ring would have to be.
    recv_depth: Gauge,
    send_depth: Gauge,
    /// Notified when a receive event is posted.
    pub recv_signal: Signal,
    /// Notified when a send event is posted.
    pub send_signal: Signal,
    /// Notified when *any* event is posted (progress-engine wakeup).
    pub any_signal: Signal,
}

impl UserQueues {
    /// Create the queues (library side, at port open).
    pub fn new(sim: &Sim) -> Self {
        let metrics = sim.metrics();
        UserQueues {
            recv: Mutex::new(VecDeque::new()),
            send: Mutex::new(VecDeque::new()),
            recv_depth: metrics.gauge("cq.recv_depth"),
            send_depth: metrics.gauge("cq.send_depth"),
            recv_signal: Signal::new(sim),
            send_signal: Signal::new(sim),
            any_signal: Signal::new(sim),
        }
    }

    /// NIC side: post a receive event and wake pollers.
    pub fn push_recv(&self, ev: RecvEvent) {
        {
            let mut q = self.recv.lock();
            q.push_back(ev);
            self.recv_depth.add(1);
        }
        self.recv_signal.notify();
        self.any_signal.notify();
    }

    /// NIC side: post a send event and wake pollers.
    pub fn push_send(&self, ev: SendEvent) {
        {
            let mut q = self.send.lock();
            q.push_back(ev);
            self.send_depth.add(1);
        }
        self.send_signal.notify();
        self.any_signal.notify();
    }

    /// Library side: block until *some* event (send or receive) is queued.
    /// Progress engines (EADI) use this to pump both queues.
    pub fn wait_any(&self, ctx: &mut ActorCtx) {
        loop {
            if !self.recv.lock().is_empty() || !self.send.lock().is_empty() {
                return;
            }
            self.any_signal.wait(ctx);
        }
    }

    /// Library side: non-blocking poll of the receive queue.
    pub fn pop_recv(&self) -> Option<RecvEvent> {
        let ev = self.recv.lock().pop_front();
        if ev.is_some() {
            self.recv_depth.sub(1);
        }
        ev
    }

    /// Library side: non-blocking poll of the send queue.
    pub fn pop_send(&self) -> Option<SendEvent> {
        let ev = self.send.lock().pop_front();
        if ev.is_some() {
            self.send_depth.sub(1);
        }
        ev
    }

    /// Library side: block the actor until a receive event is available.
    pub fn wait_recv(&self, ctx: &mut ActorCtx) -> RecvEvent {
        loop {
            if let Some(ev) = self.pop_recv() {
                return ev;
            }
            self.recv_signal.wait(ctx);
        }
    }

    /// Library side: block the actor until a send event is available.
    pub fn wait_send(&self, ctx: &mut ActorCtx) -> SendEvent {
        loop {
            if let Some(ev) = self.pop_send() {
                return ev;
            }
            self.send_signal.wait(ctx);
        }
    }

    /// Events currently queued (recv, send) — for tests.
    pub fn depths(&self) -> (usize, usize) {
        (self.recv.lock().len(), self.send.lock().len())
    }
}

/// The system channel's buffer pool (paper §2.2): a FIFO of fixed-size
/// buffers in the receiver's user space. The NIC takes a free buffer for
/// each arriving small message; the library returns it after consumption.
pub struct SystemPool {
    buf_bytes: u64,
    /// Physical segments of each buffer (pinned at port open).
    bufs: Vec<Vec<(PhysAddr, u64)>>,
    free: Mutex<VecDeque<u32>>,
}

impl SystemPool {
    /// Build from the pinned segment lists of the pool's buffers.
    pub fn new(buf_bytes: u64, bufs: Vec<Vec<(PhysAddr, u64)>>) -> Self {
        let free = (0..bufs.len() as u32).collect();
        SystemPool {
            buf_bytes,
            bufs,
            free: Mutex::new(free),
        }
    }

    /// Size of each buffer (= largest system-channel message).
    pub fn buf_bytes(&self) -> u64 {
        self.buf_bytes
    }

    /// Number of buffers.
    pub fn len(&self) -> usize {
        self.bufs.len()
    }

    /// True if the pool has no buffers at all.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// NIC side: claim the next free buffer (FIFO). `None` ⇒ the incoming
    /// message is discarded, as the paper specifies.
    pub fn claim(&self) -> Option<u32> {
        self.free.lock().pop_front()
    }

    /// Library side: return a consumed buffer to the pool.
    pub fn release(&self, idx: u32) {
        assert!((idx as usize) < self.bufs.len(), "bogus pool index {idx}");
        let mut free = self.free.lock();
        debug_assert!(!free.contains(&idx), "double release of buffer {idx}");
        free.push_back(idx);
    }

    /// Physical segments of buffer `idx`.
    pub fn segments(&self, idx: u32) -> &[(PhysAddr, u64)] {
        &self.bufs[idx as usize]
    }

    /// Free buffers right now.
    pub fn free_count(&self) -> usize {
        self.free.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::{ChannelId, ProcAddr, RecvDataLoc, SendStatus};
    use std::sync::Arc;
    use suca_os::NodeId;
    use suca_sim::{RunOutcome, SimDuration};

    fn ev(n: u32) -> RecvEvent {
        RecvEvent {
            src: ProcAddr {
                node: NodeId(0),
                port: crate::port::PortId(0),
            },
            channel: ChannelId::SYSTEM,
            len: n as u64,
            msg_id: n,
            data: RecvDataLoc::SystemBuffer(0),
        }
    }

    #[test]
    fn fifo_order() {
        let sim = Sim::new(1);
        let q = UserQueues::new(&sim);
        q.push_recv(ev(1));
        q.push_recv(ev(2));
        assert_eq!(q.pop_recv().unwrap().msg_id, 1);
        assert_eq!(q.pop_recv().unwrap().msg_id, 2);
        assert!(q.pop_recv().is_none());
    }

    #[test]
    fn wait_recv_blocks_until_event() {
        let sim = Sim::new(1);
        let q = Arc::new(UserQueues::new(&sim));
        let q2 = q.clone();
        sim.spawn("rx", move |ctx| {
            let e = q2.wait_recv(ctx);
            assert_eq!(e.msg_id, 9);
            assert_eq!(ctx.now().as_us(), 5.0);
        });
        let q3 = q.clone();
        sim.schedule_in(SimDuration::from_us(5), move |_| q3.push_recv(ev(9)));
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn wait_send_sees_status() {
        let sim = Sim::new(1);
        let q = Arc::new(UserQueues::new(&sim));
        q.push_send(SendEvent {
            msg_id: 3,
            status: SendStatus::Ok,
        });
        let q2 = q.clone();
        sim.spawn("tx", move |ctx| {
            let e = q2.wait_send(ctx);
            assert_eq!(e.status, SendStatus::Ok);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn pool_fifo_claim_release() {
        let bufs = vec![vec![(PhysAddr(0), 4096)], vec![(PhysAddr(4096), 4096)]];
        let pool = SystemPool::new(4096, bufs);
        assert_eq!(pool.free_count(), 2);
        let a = pool.claim().unwrap();
        let b = pool.claim().unwrap();
        assert_eq!((a, b), (0, 1));
        assert!(pool.claim().is_none(), "pool exhausted");
        pool.release(b);
        assert_eq!(pool.claim().unwrap(), 1, "FIFO reuse");
    }
}
