//! Intra-node communication over shared memory (paper §4.2).
//!
//! "BCL uses shared memory based intra-node communication. The internal
//! buffer queue is used to transfer message from one process to another
//! process within a node. … Each pair of processes has two queues. …
//! BCL reduced the extra overhead by using the pipeline message passing
//! technique."
//!
//! The data plane is real: payload bytes move through a [`SharedRegion`]
//! ring per ordered process pair, with per-message sequence numbers checked
//! on the receive side. The *timing* of the pipelined double copy is modeled
//! analytically: the sender is occupied for its own chunk copies; delivery
//! completes one chunk later (the receiver's copy of the final chunk runs
//! concurrently with nothing, all earlier receiver copies overlap sender
//! copies). This yields the paper's 2.7 µs / ~391 MB/s intra-node figures.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use suca_mem::{PhysMemory, SharedRegion};
use suca_sim::{ActorCtx, Sim, SimDuration};

use crate::config::IntraNodeConfig;
use crate::port::{ChannelId, PortId, ProcAddr, RecvDataLoc, RecvEvent, SendEvent, SendStatus};
use crate::queues::UserQueues;
use suca_os::NodeId;

/// One direction of a process pair: a shared ring plus sequence bookkeeping.
struct PairQueue {
    ring: SharedRegion,
    next_seq_tx: u64,
    next_seq_rx: u64,
    write_pos: u64,
}

struct HubState {
    ports: HashMap<u16, Arc<UserQueues>>,
    pairs: HashMap<(u16, u16), PairQueue>,
}

/// Per-node intra-node message hub.
pub struct IntraHub {
    sim: Sim,
    node: NodeId,
    cfg: IntraNodeConfig,
    mem: PhysMemory,
    state: Mutex<HubState>,
}

impl IntraHub {
    /// Create the hub for a node.
    pub fn new(sim: &Sim, node: NodeId, mem: PhysMemory, cfg: IntraNodeConfig) -> Arc<IntraHub> {
        Arc::new(IntraHub {
            sim: sim.clone(),
            node,
            cfg,
            mem,
            state: Mutex::new(HubState {
                ports: HashMap::new(),
                pairs: HashMap::new(),
            }),
        })
    }

    /// Library side: register a port's event queues at port open.
    pub fn register_port(&self, port: PortId, queues: Arc<UserQueues>) {
        self.state.lock().ports.insert(port.0, queues);
    }

    /// Library side: deregister at close.
    pub fn unregister_port(&self, port: PortId) {
        self.state.lock().ports.remove(&port.0);
    }

    /// Time one chunk copy occupies a CPU.
    fn chunk_cost(&self, len: u64) -> SimDuration {
        self.cfg.per_chunk_overhead
            + if len == 0 {
                SimDuration::ZERO
            } else {
                SimDuration::for_bytes(len, self.cfg.copy_bytes_per_sec)
            }
    }

    /// Send `data` from `src_port` to `dst_port` on this node. Blocks the
    /// calling actor for the sender-side work (fixed overhead plus its copy
    /// chunks); the receive event is delivered one chunk-time later.
    pub fn send(
        &self,
        ctx: &mut ActorCtx,
        src_port: PortId,
        dst_port: PortId,
        channel: ChannelId,
        msg_id: u32,
        data: &[u8],
    ) -> bool {
        let dst_queues = match self.state.lock().ports.get(&dst_port.0) {
            Some(q) => q.clone(),
            None => return false,
        };
        ctx.sleep(self.cfg.send_overhead);

        // Copy through the shared ring chunk by chunk (real bytes), charging
        // the sender's copy time.
        let mut copied = Vec::with_capacity(data.len());
        {
            let mut st = self.state.lock();
            let ring_bytes = self.cfg.chunk_bytes * self.cfg.ring_depth as u64;
            let pair = match st.pairs.entry((src_port.0, dst_port.0)) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => v.insert(PairQueue {
                    ring: SharedRegion::alloc(&self.mem, ring_bytes)
                        .expect("intra-node ring allocation"),
                    next_seq_tx: 0,
                    next_seq_rx: 0,
                    write_pos: 0,
                }),
            };
            // Per-message sequence number ("BCL uses the sequential number
            // to decide whether the operation should continue or not").
            let seq = pair.next_seq_tx;
            pair.next_seq_tx += 1;
            assert_eq!(seq, pair.next_seq_rx, "intra-node sequence violated");
            pair.next_seq_rx += 1;

            let mut off = 0u64;
            while off < data.len() as u64 || (data.is_empty() && off == 0) {
                let len = self.cfg.chunk_bytes.min(data.len() as u64 - off);
                let slot = pair.write_pos % ring_bytes.max(1);
                // Stage into the ring (wrapping slot), then read back out —
                // the data genuinely traverses the shared segment.
                if len > 0 {
                    let end = (slot + len).min(ring_bytes);
                    let first = (end - slot) as usize;
                    pair.ring
                        .write(slot, &data[off as usize..off as usize + first])
                        .expect("ring write");
                    let mut out = vec![0u8; first];
                    pair.ring.read(slot, &mut out).expect("ring read");
                    copied.extend_from_slice(&out);
                    if (len as usize) > first {
                        let rest = len as usize - first;
                        pair.ring
                            .write(0, &data[off as usize + first..off as usize + len as usize])
                            .expect("ring wrap write");
                        let mut out2 = vec![0u8; rest];
                        pair.ring.read(0, &mut out2).expect("ring wrap read");
                        copied.extend_from_slice(&out2);
                    }
                    pair.write_pos += len;
                }
                off += len;
                if data.is_empty() {
                    break;
                }
            }
        }

        // Charge the sender's pipelined copy time.
        let chunks = (data.len() as u64).div_ceil(self.cfg.chunk_bytes);
        let mut sender_busy = SimDuration::ZERO;
        let mut remaining = data.len() as u64;
        for _ in 0..chunks {
            let len = remaining.min(self.cfg.chunk_bytes);
            sender_busy += self.chunk_cost(len);
            remaining -= len;
        }
        ctx.sleep(sender_busy);

        // Delivery completes after the receiver's copy of the last chunk
        // (the only receiver copy not overlapped with a sender copy) plus
        // the handoff flag.
        let last_chunk = if data.is_empty() {
            0
        } else {
            (data.len() as u64 - 1) % self.cfg.chunk_bytes + 1
        };
        let lag = self.cfg.handoff
            + if last_chunk == 0 {
                SimDuration::ZERO
            } else {
                self.chunk_cost(last_chunk)
            };
        let ev = RecvEvent {
            src: ProcAddr {
                node: self.node,
                port: src_port,
            },
            channel,
            len: data.len() as u64,
            msg_id,
            data: RecvDataLoc::Inline(copied),
        };
        let src_queues = self.state.lock().ports.get(&src_port.0).cloned();
        self.sim.schedule_in(lag, move |_| {
            dst_queues.push_recv(ev);
            if let Some(q) = src_queues {
                q.push_send(SendEvent {
                    msg_id,
                    status: SendStatus::Ok,
                });
            }
        });
        self.sim.add_count("bcl.intra_msgs", 1);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BclConfig;
    use suca_sim::{RunOutcome, Sim};

    fn hub(sim: &Sim) -> Arc<IntraHub> {
        IntraHub::new(
            sim,
            NodeId(0),
            PhysMemory::new(16 << 20),
            BclConfig::dawning3000().intra,
        )
    }

    #[test]
    fn zero_len_latency_is_2_7us() {
        let sim = Sim::new(1);
        let h = hub(&sim);
        let qa = Arc::new(UserQueues::new(&sim));
        let qb = Arc::new(UserQueues::new(&sim));
        h.register_port(PortId(0), qa);
        h.register_port(PortId(1), qb.clone());
        let h2 = h.clone();
        let cfg = BclConfig::dawning3000();
        sim.spawn("sender", move |ctx| {
            assert!(h2.send(ctx, PortId(0), PortId(1), ChannelId::SYSTEM, 1, b""));
        });
        let poll_recv = cfg.poll_recv;
        sim.spawn("receiver", move |ctx| {
            let ev = qb.wait_recv(ctx);
            ctx.sleep(poll_recv); // the receive-side event poll cost
            assert_eq!(ev.len, 0);
            let t = ctx.now().as_us();
            assert!(
                (t - 2.7).abs() < 0.05,
                "intra-node 0-len latency {t} us; paper says 2.7"
            );
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn payload_integrity_through_the_ring() {
        let sim = Sim::new(1);
        let h = hub(&sim);
        let qb = Arc::new(UserQueues::new(&sim));
        h.register_port(PortId(0), Arc::new(UserQueues::new(&sim)));
        h.register_port(PortId(1), qb.clone());
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 255) as u8).collect();
        let expect = payload.clone();
        let h2 = h.clone();
        sim.spawn("sender", move |ctx| {
            h2.send(ctx, PortId(0), PortId(1), ChannelId::SYSTEM, 1, &payload);
        });
        sim.spawn("receiver", move |ctx| {
            let ev = qb.wait_recv(ctx);
            match ev.data {
                RecvDataLoc::Inline(v) => assert_eq!(v, expect),
                other => panic!("unexpected loc {other:?}"),
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn large_message_bandwidth_is_about_391_mbps() {
        let sim = Sim::new(1);
        let h = hub(&sim);
        let qb = Arc::new(UserQueues::new(&sim));
        h.register_port(PortId(0), Arc::new(UserQueues::new(&sim)));
        h.register_port(PortId(1), qb.clone());
        let len = 128 * 1024u64;
        let payload = vec![7u8; len as usize];
        let h2 = h.clone();
        sim.spawn("sender", move |ctx| {
            h2.send(ctx, PortId(0), PortId(1), ChannelId::SYSTEM, 1, &payload);
        });
        let done = Arc::new(Mutex::new(0.0f64));
        let d2 = done.clone();
        sim.spawn("receiver", move |ctx| {
            let _ = qb.wait_recv(ctx);
            *d2.lock() = ctx.now().as_us() / 1e6;
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let bw = len as f64 / *done.lock() / 1e6;
        assert!(
            (bw - 391.0).abs() < 15.0,
            "intra-node bandwidth {bw:.1} MB/s; paper says 391"
        );
    }

    #[test]
    fn unknown_destination_port_fails_cleanly() {
        let sim = Sim::new(1);
        let h = hub(&sim);
        h.register_port(PortId(0), Arc::new(UserQueues::new(&sim)));
        let h2 = h.clone();
        sim.spawn("sender", move |ctx| {
            assert!(!h2.send(ctx, PortId(0), PortId(9), ChannelId::SYSTEM, 1, b"x"));
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn messages_arrive_in_send_order() {
        let sim = Sim::new(1);
        let h = hub(&sim);
        let qb = Arc::new(UserQueues::new(&sim));
        h.register_port(PortId(0), Arc::new(UserQueues::new(&sim)));
        h.register_port(PortId(1), qb.clone());
        let h2 = h.clone();
        sim.spawn("sender", move |ctx| {
            for i in 0..10u32 {
                h2.send(
                    ctx,
                    PortId(0),
                    PortId(1),
                    ChannelId::SYSTEM,
                    i,
                    &i.to_le_bytes(),
                );
            }
        });
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s2 = seen.clone();
        sim.spawn("receiver", move |ctx| {
            for _ in 0..10 {
                let ev = qb.wait_recv(ctx);
                s2.lock().push(ev.msg_id);
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(*seen.lock(), (0..10).collect::<Vec<u32>>());
    }
}
