//! MCP — the Message Control Program (NIC firmware).
//!
//! The paper's BCL has three layers; this is the bottom one, running on the
//! NIC's LANai processor. "MCP controls all the inter-node packet transfers.
//! MCP completes a sending operation by reading send request in the card's
//! local memory, sending/receiving message with DMA engines and informing
//! user process the completion." (§4.1.1)
//!
//! Responsibilities implemented here, all as deterministic simulation
//! events:
//!
//! * **Send engine** — pops send descriptors posted by the kernel module,
//!   stages fragments from user memory into SRAM by host-DMA, stamps
//!   go-back-N sequence numbers, and injects packets. The LANai waits for
//!   each fragment's wire DMA before processing the next, which (together
//!   with `send_per_frag`) produces the paper's 146 MB/s plateau.
//! * **Reliable transmission** — per-destination go-back-N with cumulative
//!   ACKs and timeout retransmission ("NIC control program need to process
//!   the reliable protocol and perform re-transmission when timeout").
//! * **Receive engine** — CRC/sequence checking, demux to ports and
//!   channels, DMA of payloads straight into user buffers (system pool or
//!   posted normal buffers), RMA one-sided reads/writes, and DMA of
//!   completion events into user-space queues (the kernel-free receive
//!   path that defines the architecture).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, OnceLock};

use bytes::Bytes;
use parking_lot::Mutex;

use suca_mem::{PhysAddr, PhysMemory};
use suca_myrinet::{Fabric, FabricNodeId, PacketTrace, SramLease, SramPool, FRAMING_BYTES};
use suca_os::NodeId;
use suca_pci::DmaEngine;
use suca_sim::mtrace::{stage, TraceEvent, TraceId, TraceLayer};
use suca_sim::{Counter, EventId, Histogram, PollerId, Sim, SimDuration, SimTime};

use crate::coll::CollSetup;
use crate::config::BclConfig;
use crate::port::{
    ChannelId, ChannelKind, PortId, ProcAddr, RecvDataLoc, RecvEvent, SendEvent, SendStatus,
};
use crate::queues::{SystemPool, UserQueues};
use crate::reliable::{EpochReceiver, EpochSender, EpochVerdict, GbnVerdict};
use crate::sg::{read_sg, sg_total, write_sg};
use crate::wire::{WireHeader, WireKind, HEADER_BYTES};

/// What a send descriptor asks the MCP to do.
#[derive(Clone, Debug)]
pub enum JobKind {
    /// Ordinary message to a system or normal channel.
    Message,
    /// One-sided write into the destination's open channel at `offset`.
    RmaWrite {
        /// Byte offset within the target's bound buffer.
        offset: u64,
    },
    /// One-sided read request: ask the target for `len` bytes at `offset`
    /// of its open channel; the reply lands in this job's `segments`.
    RmaReadReq {
        /// Byte offset within the target's bound buffer.
        offset: u64,
        /// Bytes to read.
        len: u64,
    },
    /// Reply stream for a read request (generated NIC-side at the target).
    RmaReadData,
    /// One collective-plan contribution, generated NIC-side by the plan
    /// interpreter. The payload is held inline (it is a snapshot of the
    /// interpreter's SRAM accumulator, not host memory), prefixed on the
    /// wire with the 4-byte LE collective id; always a single fragment.
    Coll {
        /// Collective id matching the arrival to the peer's run.
        coll_id: u32,
        /// Plan chunk index, carried in the header `offset`.
        chunk: u32,
        /// Accumulator snapshot at step entry.
        data: Vec<u8>,
    },
}

/// A send descriptor, as written into NIC memory by the kernel module.
#[derive(Clone, Debug)]
pub struct SendJob {
    /// Originating port (for the completion event).
    pub src_port: PortId,
    /// Destination NIC.
    pub dst_fid: FabricNodeId,
    /// Destination port.
    pub dst_port: PortId,
    /// Destination channel.
    pub channel: ChannelId,
    /// Message id (assigned by the kernel module, unique per node).
    pub msg_id: u32,
    /// Physical segments of the payload in user memory.
    pub segments: Vec<(PhysAddr, u64)>,
    /// Payload length.
    pub total_len: u64,
    /// Operation.
    pub kind: JobKind,
    /// Message-level retries performed so far.
    pub retries: u32,
    /// Whether to post a send-completion event when injected.
    pub notify_sender: bool,
}

struct ActiveSend {
    job: SendJob,
    /// Generation guard: staging callbacks from an aborted send are dropped.
    gen: u64,
    /// Staged fragments: (offset, data, SRAM lease held until injection).
    staged: VecDeque<(u64, Vec<u8>, Option<SramLease>)>,
    stage_next: u64,
    staging: bool,
    injected: u64,
}

struct Incoming {
    port: PortId,
    channel: ChannelId,
    src_port: PortId,
    total: u64,
    received: u64,
    target: Vec<(PhysAddr, u64)>,
    loc: RecvDataLoc,
}

struct PendingRead {
    port: PortId,
    segments: Vec<(PhysAddr, u64)>,
    total: u64,
    received: u64,
}

struct NicPort {
    queues: Arc<UserQueues>,
    pool: Arc<SystemPool>,
    normal: HashMap<u16, Vec<(PhysAddr, u64)>>,
    open: HashMap<u16, Vec<(PhysAddr, u64)>>,
}

/// One contribution parked before its run exists (the peer's descriptor
/// beat ours to the NIC) — keyed into [`McpState::coll_early`].
struct CollArrival {
    src_node: u32,
    src_port: u16,
    chunk: u32,
    data: Vec<u8>,
}

/// One in-flight collective: the plan interpreter's per-run state machine.
/// Lives entirely in NIC SRAM — a chaos wipe discards it like any other
/// firmware state, rejecting the initiator's completion so no chain wedges.
struct CollRun {
    setup: CollSetup,
    /// Accumulator; seeded from the pinned payload by the staging DMA.
    acc: Vec<u8>,
    /// Payload DMA finished; the interpreter may run.
    staged: bool,
    /// Current step index into `setup.steps`.
    step: usize,
    /// Entry sends of the current step already fired.
    sent_current: bool,
    /// Wire sends queued but not yet fully injected; completion waits for
    /// zero so the initiator can never observe done-before-inject.
    outstanding_sends: u32,
    /// Arrived contributions per `(src node, src port, chunk)` edge, FIFO.
    inbox: HashMap<(u32, u16, u32), VecDeque<Vec<u8>>>,
}

struct McpState {
    ports: HashMap<u16, NicPort>,
    send_queue: VecDeque<SendJob>,
    retx: VecDeque<(FabricNodeId, Bytes)>,
    active: Option<ActiveSend>,
    active_gen: u64,
    sender_busy: bool,
    gbn_tx: HashMap<u32, EpochSender>,
    gbn_rx: HashMap<u32, EpochReceiver>,
    timers: HashMap<u32, EventId>,
    incoming: HashMap<(u32, u32), Incoming>,
    rejected: HashSet<(u32, u32)>,
    pending_reads: HashMap<u32, PendingRead>,
    completed: HashMap<u32, SendJob>,
    completed_order: VecDeque<u32>,
    /// Active rail per destination (index into `fabrics`); absent = rail 0.
    rail_for: HashMap<u32, usize>,
    /// Consecutive retransmission timeouts per destination with no ack
    /// progress in between — the paper's kernel-side path-death detector.
    consec_timeouts: HashMap<u32, u32>,
    /// Rail failovers per destination since the last ack progress. Once it
    /// reaches the rail count, the destination is advisorily dead.
    failovers_no_progress: HashMap<u32, u32>,
    /// Destinations declared unreachable on every rail. The kernel refuses
    /// *new* sends ([`crate::BclError::PathDead`]); the firmware keeps
    /// retrying underneath so a revived path clears itself.
    dead_paths: HashSet<u32>,
    /// When the in-progress epoch resync per destination started (for the
    /// recovery-latency histogram).
    sync_started: HashMap<u32, SimTime>,
    /// Chaos: while set and in the future, the whole node is crashed — the
    /// send engine stalls and every arriving packet is a counted drop.
    down_until: Option<SimTime>,
    /// In-flight collective runs keyed `(initiating port, collective id)`.
    colls: HashMap<(u16, u32), CollRun>,
    /// Contributions that arrived before the local descriptor; merged into
    /// the run at post time. Bounded by [`COLL_EARLY_CAP`] across all keys.
    coll_early: HashMap<(u16, u32), Vec<CollArrival>>,
    /// Total parked early contributions (the bound's bookkeeping).
    coll_early_total: usize,
}

/// One decoded control arrival parked in the NIC's rx descriptor ring while
/// its `ack_process` delay elapses. Kept small and unboxed: scheduling the
/// matching poll tick allocates nothing.
enum CtrlDesc {
    Ack {
        src: FabricNodeId,
        epoch: u16,
        cum: u32,
    },
    Reject {
        msg_id: u32,
        fatal: bool,
    },
    EpochSync {
        src: FabricNodeId,
        epoch: u16,
        parked: u16,
        rail: usize,
    },
    EpochSyncAck {
        src: FabricNodeId,
        epoch: u16,
        old_cum: u32,
    },
}

/// One decoded data arrival awaiting its `recv_per_frag` processing delay.
struct DataDesc {
    src: FabricNodeId,
    header: WireHeader,
    payload: Bytes,
    rail: usize,
}

/// One staged fragment awaiting its injection instant.
struct TxDesc {
    rail: usize,
    dst: FabricNodeId,
    pkt: Bytes,
    meta: Option<PacketTrace>,
}

/// Descriptor rings drained by registered pollers. Each ring pairs with a
/// constant processing delay, so push order equals poll-tick `(time, seq)`
/// order and the i-th tick always finds its own descriptor at the front —
/// behavior is identical to the per-event boxed closures these replace,
/// minus the per-packet allocation.
struct Rings {
    /// Control arrivals (acks, rejects, epoch handshake), `ack_process` each.
    rx_ctrl: Mutex<VecDeque<CtrlDesc>>,
    /// Data arrivals, `recv_per_frag` each.
    rx_data: Mutex<VecDeque<DataDesc>>,
    /// Outgoing fragments from the send engine, `send_per_frag` each.
    tx: Mutex<VecDeque<TxDesc>>,
    /// Outgoing control packets, `ack_send` each.
    tx_ctrl: Mutex<VecDeque<TxDesc>>,
}

/// Poller handles for the rings plus the send-engine step, registered once
/// at boot on this node's event-queue shard.
struct McpPollers {
    rx_ctrl: PollerId,
    rx_data: PollerId,
    tx: PollerId,
    tx_ctrl: PollerId,
    sender: PollerId,
}

pub(crate) struct McpInner {
    sim: Sim,
    cfg: BclConfig,
    node: NodeId,
    fid: FabricNodeId,
    /// All rails this NIC is attached to. Single-rail clusters have one
    /// entry; dual-fabric nodes fail over between entries on path death.
    fabrics: Vec<Arc<dyn Fabric>>,
    mem: PhysMemory,
    host_dma: DmaEngine,
    sram: SramPool,
    frag_cap: u64,
    state: Mutex<McpState>,
    rings: Rings,
    pollers: OnceLock<McpPollers>,
    // Typed metric handles for the firmware hot paths (cluster-wide cells).
    sram_stalls: Counter,
    retx_packets: Counter,
    completion_dmas: Counter,
    protocol_errors: Counter,
    path_deaths: Counter,
    rail_failovers: Counter,
    nic_resets: Counter,
    stale_epoch_drops: Counter,
    node_down_drops: Counter,
    recovery_ns: Histogram,
    // Interned once so hot-path trace recording never allocates.
    track_tx: &'static str,
    track_rx: &'static str,
}

/// Handle to one NIC's firmware.
#[derive(Clone)]
pub struct Mcp {
    inner: Arc<McpInner>,
}

/// One unit of send-engine work, decided under the state lock and executed
/// outside it.
enum Work {
    /// Retransmit an already-encoded packet.
    Retx {
        dst: FabricNodeId,
        pkt: Bytes,
        rail: usize,
    },
    /// A new descriptor was activated; charge the fixed cost.
    NewJob { trace: TraceId },
    /// Inject one freshly staged fragment.
    Frag {
        dst: FabricNodeId,
        pkt: Bytes,
        trace: TraceId,
        seq: u32,
        bytes: u64,
        rail: usize,
    },
    /// Waiting on the staging DMA.
    StallStaging,
    /// Go-back-N window closed.
    StallWindow,
    /// Active send abandoned after a protocol error.
    Dropped,
    /// Queue empty.
    Idle,
}

/// How many fragments the staging engine keeps ahead of injection.
const STAGE_AHEAD: usize = 8;
/// Completed-job memory for message-level retries.
const COMPLETED_CAP: usize = 256;
/// Early-arrival buffer for collective contributions whose local descriptor
/// has not been posted yet. Overflow is a counted drop with a flight-record
/// dump — a wedged collective must leave evidence, never a stuck node.
const COLL_EARLY_CAP: usize = 4096;

impl Mcp {
    /// Boot the firmware on the NIC of `node`, attached to `fabric` at
    /// `fid`. Node ids and fabric ids are identity-mapped by the cluster
    /// builder.
    pub fn new(
        sim: &Sim,
        node: NodeId,
        fid: FabricNodeId,
        fabric: Arc<dyn Fabric>,
        mem: PhysMemory,
        cfg: BclConfig,
    ) -> Mcp {
        Self::new_multi_rail(sim, node, fid, vec![fabric], mem, cfg)
    }

    /// Boot the firmware attached to several rails at once (dual-fabric
    /// nodes). Rail 0 is the initial path to every destination; the others
    /// are failover targets. Every rail must expose this node at `fid`.
    pub fn new_multi_rail(
        sim: &Sim,
        node: NodeId,
        fid: FabricNodeId,
        fabrics: Vec<Arc<dyn Fabric>>,
        mem: PhysMemory,
        cfg: BclConfig,
    ) -> Mcp {
        assert!(!fabrics.is_empty(), "a NIC needs at least one rail");
        let host_dma = DmaEngine::from_pci(sim, "host", &cfg.pci);
        let sram = SramPool::new(cfg.nic_sram_bytes);
        // Fragments must fit every rail, so a message resynced onto the
        // other fabric never needs re-fragmenting.
        let min_mtu = fabrics.iter().map(|f| f.mtu()).min().unwrap_or(0);
        let frag_cap = (min_mtu as u64)
            .saturating_sub(HEADER_BYTES as u64)
            .min(4096);
        assert!(frag_cap > 0, "MTU too small for the BCL header");
        assert!(
            cfg.nic_sram_bytes >= frag_cap,
            "NIC SRAM must hold at least one fragment or staging deadlocks"
        );
        let metrics = sim.metrics();
        let send_ring = cfg.limits.send_ring as u64;
        sram.attach_gauge(metrics.gauge("nic.sram_used"));
        let inner = Arc::new(McpInner {
            sim: sim.clone(),
            cfg,
            node,
            fid,
            fabrics: fabrics.clone(),
            mem,
            host_dma,
            sram,
            frag_cap,
            sram_stalls: metrics.counter("bcl.sram_stall"),
            retx_packets: metrics.counter("bcl.retx_packets"),
            completion_dmas: metrics.counter("mcp.completion_dmas"),
            protocol_errors: metrics.counter("mcp.protocol_errors"),
            path_deaths: metrics.counter("mcp.path_deaths"),
            rail_failovers: metrics.counter("mcp.rail_failovers"),
            nic_resets: metrics.counter("mcp.nic_resets"),
            stale_epoch_drops: metrics.counter("mcp.stale_epoch_drops"),
            node_down_drops: metrics.counter("mcp.node_down_drops"),
            recovery_ns: metrics.histogram("chaos.recovery_ns"),
            track_tx: suca_sim::intern(&format!("n{}/tx", node.0)),
            track_rx: suca_sim::intern(&format!("n{}/rx", node.0)),
            rings: Rings {
                rx_ctrl: Mutex::new(VecDeque::new()),
                rx_data: Mutex::new(VecDeque::new()),
                tx: Mutex::new(VecDeque::new()),
                tx_ctrl: Mutex::new(VecDeque::new()),
            },
            pollers: OnceLock::new(),
            state: Mutex::new(McpState {
                ports: HashMap::new(),
                send_queue: VecDeque::new(),
                retx: VecDeque::new(),
                active: None,
                active_gen: 0,
                sender_busy: false,
                gbn_tx: HashMap::new(),
                gbn_rx: HashMap::new(),
                timers: HashMap::new(),
                incoming: HashMap::new(),
                rejected: HashSet::new(),
                pending_reads: HashMap::new(),
                completed: HashMap::new(),
                completed_order: VecDeque::new(),
                rail_for: HashMap::new(),
                consec_timeouts: HashMap::new(),
                failovers_no_progress: HashMap::new(),
                dead_paths: HashSet::new(),
                sync_started: HashMap::new(),
                down_until: None,
                colls: HashMap::new(),
                coll_early: HashMap::new(),
                coll_early_total: 0,
            }),
        });
        // Ring pollers, pinned to this node's event-queue shard. Weak
        // references so the engine's poller registry never pins the firmware
        // alive past cluster teardown.
        let poller = |f: fn(&Arc<McpInner>)| {
            let weak = Arc::downgrade(&inner);
            inner.sim.register_poller(node.0, move |_| {
                if let Some(inner) = weak.upgrade() {
                    f(&inner);
                }
            })
        };
        inner
            .pollers
            .set(McpPollers {
                rx_ctrl: poller(McpInner::poll_rx_ctrl),
                rx_data: poller(McpInner::poll_rx_data),
                tx: poller(McpInner::poll_tx),
                tx_ctrl: poller(McpInner::poll_tx_ctrl),
                sender: poller(McpInner::sender_step),
            })
            .unwrap_or_else(|_| unreachable!("pollers registered once"));
        for (rail, fabric) in fabrics.iter().enumerate() {
            let weak = Arc::downgrade(&inner);
            fabric.attach(
                fid,
                Box::new(move |sim, pkt| {
                    if let Some(inner) = weak.upgrade() {
                        McpInner::on_packet(&inner, sim, pkt, rail);
                    }
                }),
            );
        }
        // Continuous-telemetry probes: NIC-side queue depths and SRAM
        // occupancy, sampled by the sim-clock telemetry tick. Weak handles
        // keep the registry from pinning the firmware alive.
        let ts = sim.timeseries();
        let n = node.0;
        let w = Arc::downgrade(&inner);
        ts.register(
            format!("n{n}.mcp.send_queue"),
            n,
            Some(send_ring),
            move |_| {
                w.upgrade()
                    .map_or(0, |i| i.state.lock().send_queue.len() as u64)
            },
        );
        let w = Arc::downgrade(&inner);
        ts.register(format!("n{n}.mcp.gbn_inflight"), n, None, move |_| {
            w.upgrade().map_or(0, |i| {
                i.state
                    .lock()
                    .gbn_tx
                    .values()
                    .map(|g| g.in_flight() as u64)
                    .sum()
            })
        });
        let w = Arc::downgrade(&inner);
        ts.register(format!("n{n}.mcp.cq_recv"), n, None, move |_| {
            w.upgrade().map_or(0, |i| {
                i.state
                    .lock()
                    .ports
                    .values()
                    .map(|p| p.queues.depths().0 as u64)
                    .sum()
            })
        });
        let w = Arc::downgrade(&inner);
        ts.register(format!("n{n}.mcp.cq_send"), n, None, move |_| {
            w.upgrade().map_or(0, |i| {
                i.state
                    .lock()
                    .ports
                    .values()
                    .map(|p| p.queues.depths().1 as u64)
                    .sum()
            })
        });
        let pool = inner.sram.clone();
        ts.register(
            format!("n{n}.nic.sram_used"),
            n,
            Some(pool.capacity()),
            move |_| pool.used(),
        );
        Mcp { inner }
    }

    /// Kernel module: register a port's host-memory structures on the NIC.
    pub fn register_port(&self, port: PortId, queues: Arc<UserQueues>, pool: Arc<SystemPool>) {
        let mut st = self.inner.state.lock();
        let prev = st.ports.insert(
            port.0,
            NicPort {
                queues,
                pool,
                normal: HashMap::new(),
                open: HashMap::new(),
            },
        );
        assert!(prev.is_none(), "port {port:?} registered twice on NIC");
    }

    /// Kernel module: tear down a port.
    pub fn unregister_port(&self, port: PortId) {
        self.inner.state.lock().ports.remove(&port.0);
    }

    /// Kernel module: post a receive buffer on a normal channel.
    /// Returns `false` if the channel already holds an unconsumed buffer
    /// and `replace` is not set. `replace` is used when the library knows
    /// the previous posting was consumed by the intra-node path (which
    /// bypasses the NIC entirely).
    pub fn post_normal(
        &self,
        port: PortId,
        idx: u16,
        segs: Vec<(PhysAddr, u64)>,
        replace: bool,
    ) -> bool {
        let mut st = self.inner.state.lock();
        let p = st
            .ports
            .get_mut(&port.0)
            .expect("post on unregistered port");
        if p.normal.contains_key(&idx) && !replace {
            return false;
        }
        p.normal.insert(idx, segs);
        true
    }

    /// Kernel module: bind a buffer to an open (RMA) channel.
    pub fn bind_open(&self, port: PortId, idx: u16, segs: Vec<(PhysAddr, u64)>) {
        let mut st = self.inner.state.lock();
        let p = st
            .ports
            .get_mut(&port.0)
            .expect("bind on unregistered port");
        p.open.insert(idx, segs);
    }

    /// Kernel module: post a send descriptor (the doorbell side effect).
    pub fn post_send(&self, job: SendJob) {
        {
            let mut st = self.inner.state.lock();
            if let JobKind::RmaReadReq { len, .. } = job.kind {
                // The reply lands in this job's segments.
                st.pending_reads.insert(
                    job.msg_id,
                    PendingRead {
                        port: job.src_port,
                        segments: job.segments.clone(),
                        total: len,
                        received: 0,
                    },
                );
            }
            st.send_queue.push_back(job);
        }
        McpInner::kick_sender(&self.inner);
    }

    /// Kernel module: post a collective descriptor (the doorbell side
    /// effect). The plan interpreter fetches the contribution by DMA and
    /// runs the schedule entirely NIC-side; the initiator's next host
    /// crossing is polling the completion event.
    pub fn post_collective(&self, setup: CollSetup) {
        McpInner::post_collective(&self.inner, setup);
    }

    /// Name of the primary rail's fabric ("myrinet", "nwrc-mesh") — the
    /// topology key for collective plan selection.
    pub fn fabric_name(&self) -> &'static str {
        self.inner.fabrics[0].name()
    }

    /// Collective runs currently in flight on this NIC (tests/observability).
    pub fn colls_in_flight(&self) -> usize {
        self.inner.state.lock().colls.len()
    }

    /// Fragment payload capacity (bytes of user data per packet).
    pub fn frag_cap(&self) -> u64 {
        self.inner.frag_cap
    }

    /// Send descriptors currently queued (back-pressure for the ring-full
    /// check in the kernel module).
    pub fn queue_depth(&self) -> usize {
        self.inner.state.lock().send_queue.len()
    }

    /// Library side: return a consumed system-pool buffer. On hardware the
    /// library updates a free list in host memory that the NIC reads by
    /// DMA; no kernel involvement either way.
    pub fn release_pool_buffer(&self, port: PortId, idx: u32) {
        let st = self.inner.state.lock();
        if let Some(p) = st.ports.get(&port.0) {
            p.pool.release(idx);
        }
    }

    /// Free system-pool buffers on a port (tests/observability).
    pub fn pool_free_count(&self, port: PortId) -> usize {
        let st = self.inner.state.lock();
        st.ports.get(&port.0).map_or(0, |p| p.pool.free_count())
    }

    /// SRAM usage observability: `(used, high_water, capacity)` bytes.
    pub fn sram_stats(&self) -> (u64, u64, u64) {
        (
            self.inner.sram.used(),
            self.inner.sram.high_water(),
            self.inner.sram.capacity(),
        )
    }

    /// Kernel module: is `dst` currently declared unreachable on every rail?
    /// Advisory — the firmware keeps retrying underneath, and ack progress
    /// clears the mark; but the kernel refuses *new* sends meanwhile.
    pub fn path_is_dead(&self, dst: FabricNodeId) -> bool {
        self.inner.state.lock().dead_paths.contains(&dst.0)
    }

    /// The rail currently carrying traffic to `dst` (observability/tests).
    pub fn active_rail(&self, dst: FabricNodeId) -> usize {
        *self.inner.state.lock().rail_for.get(&dst.0).unwrap_or(&0)
    }

    /// Number of rails this NIC is attached to.
    pub fn num_rails(&self) -> usize {
        self.inner.fabrics.len()
    }

    /// Chaos: a NIC reset wipes all MCP SRAM state — send queue, staging,
    /// go-back-N streams, reassembly and read bookkeeping. Senders that
    /// asked for completions get `Rejected` events so no chain wedges.
    /// Epochs live host-side and survive: every tx stream restarts one past
    /// its old epoch, so peers adopt the fresh streams instead of mixing
    /// them with pre-reset sequence numbers.
    pub fn chaos_reset(&self) {
        self.inner.nic_resets.inc();
        self.inner.mt_instant(TraceId::NONE, stage::CHAOS_NIC_RESET);
        McpInner::wipe_sram_state(&self.inner);
        McpInner::kick_sender(&self.inner);
    }

    /// Chaos: crash the whole node for `down_for`. The SRAM wipe of a reset
    /// plus a dead window: arriving packets are counted drops and the send
    /// engine stalls until the restart, which is counted and traced.
    pub fn chaos_crash(&self, down_for: SimDuration) {
        let inner = &self.inner;
        inner.sim.add_count("mcp.node_crashes", 1);
        inner.mt_instant(TraceId::NONE, stage::CHAOS_NODE_CRASH);
        McpInner::wipe_sram_state(inner);
        inner.state.lock().down_until = Some(inner.sim.now() + down_for);
        let me = inner.clone();
        inner.sim.schedule_in(down_for, move |s| {
            s.add_count("mcp.node_restarts", 1);
            me.mt_instant(TraceId::NONE, stage::CHAOS_NODE_RESTART);
            me.kick_sender();
        });
    }
}

impl McpInner {
    fn wire_time(&self, rail: usize, payload_len: usize) -> SimDuration {
        SimDuration::for_bytes(
            payload_len as u64 + FRAMING_BYTES,
            self.fabrics[rail].link_bytes_per_sec(),
        )
    }

    /// Active rail toward `dst`. Lock held by the caller.
    fn rail_of(&self, st: &McpState, dst: FabricNodeId) -> usize {
        *st.rail_for.get(&dst.0).unwrap_or(&0)
    }

    /// True while a chaos crash holds the node down. Lock held.
    fn is_down(&self, st: &McpState) -> bool {
        st.down_until.is_some_and(|t| self.sim.now() < t)
    }

    #[inline]
    fn mt_enabled(&self) -> bool {
        self.sim.msg_trace().enabled()
    }

    /// Record an MCP-layer instant on this node's ring.
    fn mt_instant(&self, trace: TraceId, stage_name: &'static str) {
        if self.mt_enabled() {
            self.sim.trace_event(TraceEvent::instant(
                trace,
                self.node.0,
                TraceLayer::Mcp,
                stage_name,
                self.sim.now().as_ns(),
            ));
        }
    }

    /// Trace identity of a send job. Read-reply jobs are generated NIC-side
    /// at the *target*; their chain belongs to the requesting node, which is
    /// where the reply is headed.
    fn job_trace(&self, job: &SendJob) -> TraceId {
        match job.kind {
            JobKind::RmaReadData => TraceId::new(job.dst_fid.0, job.msg_id),
            _ => TraceId::new(self.node.0, job.msg_id),
        }
    }

    /// Trace identity of a received packet. Read-reply data joins the local
    /// requester's chain; everything else originates at the sender.
    fn header_trace(&self, src: FabricNodeId, header: &WireHeader) -> TraceId {
        match header.kind {
            WireKind::RmaReadData => TraceId::new(self.node.0, header.msg_id),
            _ => TraceId::new(src.0, header.msg_id),
        }
    }

    /// Per-packet trace metadata riding the fabric, so switches and links
    /// can attribute hops and faults without parsing protocol headers.
    fn tx_packet_trace(&self, dst: FabricNodeId, header: &WireHeader) -> PacketTrace {
        let origin = match header.kind {
            WireKind::RmaReadData => dst.0,
            _ => self.node.0,
        };
        PacketTrace {
            origin,
            msg_id: header.msg_id,
            seq: header.seq,
        }
    }

    /// A protocol-state invariant was violated. The firmware must never
    /// panic the node: count it, record the event, and dump the flight
    /// recorder once so the broken run leaves evidence behind.
    fn protocol_error(&self, trace: TraceId, reason: &'static str) {
        self.protocol_errors.inc();
        let mt = self.sim.msg_trace();
        if mt.enabled() {
            self.sim.trace_event(TraceEvent::instant(
                trace,
                self.node.0,
                TraceLayer::Mcp,
                stage::PROTO_ERROR,
                self.sim.now().as_ns(),
            ));
        }
        mt.dump_once(reason);
    }

    // ---------------- descriptor rings ----------------

    fn pollers(&self) -> &McpPollers {
        self.pollers.get().expect("pollers registered at boot")
    }

    /// Process the next parked control arrival (ack / reject / handshake).
    fn poll_rx_ctrl(self: &Arc<Self>) {
        let Some(d) = self.rings.rx_ctrl.lock().pop_front() else {
            return;
        };
        match d {
            CtrlDesc::Ack { src, epoch, cum } => self.on_ack(src, epoch, cum),
            CtrlDesc::Reject { msg_id, fatal } => self.on_reject(msg_id, fatal),
            CtrlDesc::EpochSync {
                src,
                epoch,
                parked,
                rail,
            } => self.on_epoch_sync(src, epoch, parked, rail),
            CtrlDesc::EpochSyncAck {
                src,
                epoch,
                old_cum,
            } => self.on_epoch_sync_ack(src, epoch, old_cum),
        }
    }

    /// Process the next parked data arrival.
    fn poll_rx_data(self: &Arc<Self>) {
        let Some(d) = self.rings.rx_data.lock().pop_front() else {
            return;
        };
        self.on_data(d.src, d.header, d.payload, d.rail);
    }

    /// Inject the next staged data fragment onto its rail.
    fn poll_tx(self: &Arc<Self>) {
        let Some(d) = self.rings.tx.lock().pop_front() else {
            return;
        };
        self.fabrics[d.rail].inject_traced(&self.sim, self.fid, d.dst, d.pkt, d.meta);
    }

    /// Inject the next queued control packet onto its rail.
    fn poll_tx_ctrl(self: &Arc<Self>) {
        let Some(d) = self.rings.tx_ctrl.lock().pop_front() else {
            return;
        };
        self.fabrics[d.rail].inject_traced(&self.sim, self.fid, d.dst, d.pkt, d.meta);
    }

    // ---------------- send engine ----------------

    fn kick_sender(self: &Arc<Self>) {
        let should = {
            let mut st = self.state.lock();
            if st.sender_busy {
                false
            } else {
                st.sender_busy = true;
                true
            }
        };
        if should {
            self.sim
                .schedule_poll_in(SimDuration::ZERO, self.pollers().sender);
        }
    }

    /// One step of the LANai send loop. Invariant: `sender_busy` is true and
    /// exactly one chain of `sender_step` events exists while it is.
    fn sender_step(self: &Arc<Self>) {
        let work = {
            let mut st = self.state.lock();
            self.next_work(&mut st)
        };
        match work {
            Work::Idle | Work::StallStaging | Work::StallWindow => {}
            Work::Dropped => {
                // A protocol error abandoned the active send; keep the
                // engine chain alive so queued jobs still go out.
                self.sim
                    .schedule_poll_in(SimDuration::ZERO, self.pollers().sender);
            }
            Work::NewJob { trace } => {
                // Charge the per-message fixed cost (descriptor fetch +
                // reliable-protocol setup), then continue.
                let start = self.sim.now();
                let d = self.cfg.mcp.send_fixed;
                self.sim.trace_span(
                    self.track_tx,
                    "mcp: descriptor fetch + reliable setup",
                    start,
                    start + d,
                );
                if self.mt_enabled() {
                    self.sim.trace_event(TraceEvent::span(
                        trace,
                        self.node.0,
                        TraceLayer::Mcp,
                        stage::DESCRIPTOR,
                        start.as_ns(),
                        (start + d).as_ns(),
                    ));
                }
                self.sim.schedule_poll_in(d, self.pollers().sender);
            }
            Work::Retx { dst, pkt, rail } => {
                self.retx_packets.inc();
                let proc = self.cfg.mcp.send_per_frag;
                let tx = self.wire_time(rail, pkt.len());
                // Attribute the retransmission: the retx queue stores
                // already-encoded packets, so recover identity from the
                // wire header (only runs after a timeout — off the common
                // path).
                let mut meta = None;
                if let Some((h, _)) = WireHeader::decode(&pkt) {
                    let pt = self.tx_packet_trace(dst, &h);
                    if self.mt_enabled() {
                        let start = self.sim.now();
                        let tid = TraceId::new(pt.origin, pt.msg_id);
                        self.sim.trace_event(
                            TraceEvent::span(
                                tid,
                                self.node.0,
                                TraceLayer::Mcp,
                                stage::RETX,
                                start.as_ns(),
                                (start + proc).as_ns(),
                            )
                            .with_seq(h.seq)
                            .with_bytes(h.frag_len as u64),
                        );
                        self.sim.trace_event(
                            TraceEvent::span(
                                tid,
                                self.node.0,
                                TraceLayer::Wire,
                                stage::WIRE_TX,
                                (start + proc).as_ns(),
                                (start + proc + tx).as_ns(),
                            )
                            .with_seq(h.seq)
                            .with_bytes(pkt.len() as u64),
                        );
                    }
                    meta = Some(pt);
                }
                self.rings.tx.lock().push_back(TxDesc {
                    rail,
                    dst,
                    pkt,
                    meta,
                });
                self.sim.schedule_poll_in(proc, self.pollers().tx);
                self.sim.schedule_poll_in(proc + tx, self.pollers().sender);
            }
            Work::Frag {
                dst,
                pkt,
                trace,
                seq,
                bytes,
                rail,
            } => {
                let proc = self.cfg.mcp.send_per_frag;
                let tx = self.wire_time(rail, pkt.len());
                let start = self.sim.now();
                self.sim
                    .trace_span(self.track_tx, "mcp: fragment process", start, start + proc);
                self.sim.trace_span(
                    self.track_tx,
                    "wire: inject + transmit",
                    start + proc,
                    start + proc + tx,
                );
                let meta = if self.mt_enabled() {
                    self.sim.trace_event(
                        TraceEvent::span(
                            trace,
                            self.node.0,
                            TraceLayer::Mcp,
                            stage::INJECT,
                            start.as_ns(),
                            (start + proc).as_ns(),
                        )
                        .with_seq(seq)
                        .with_bytes(bytes),
                    );
                    self.sim.trace_event(
                        TraceEvent::span(
                            trace,
                            self.node.0,
                            TraceLayer::Wire,
                            stage::WIRE_TX,
                            (start + proc).as_ns(),
                            (start + proc + tx).as_ns(),
                        )
                        .with_seq(seq)
                        .with_bytes(pkt.len() as u64),
                    );
                    Some(PacketTrace {
                        origin: trace.origin,
                        msg_id: trace.msg_id,
                        seq,
                    })
                } else {
                    None
                };
                self.rings.tx.lock().push_back(TxDesc {
                    rail,
                    dst,
                    pkt,
                    meta,
                });
                self.sim.schedule_poll_in(proc, self.pollers().tx);
                self.sim.schedule_poll_in(proc + tx, self.pollers().sender);
            }
        }
    }

    /// Pick the next unit of send-engine work. Lock held. Any violated
    /// protocol-state invariant becomes a counted [`Work::Dropped`] (with a
    /// flight-recorder dump) instead of a firmware panic.
    fn next_work(self: &Arc<Self>, st: &mut McpState) -> Work {
        if self.is_down(st) {
            // Node crashed: the engine stalls; the restart event re-kicks.
            st.sender_busy = false;
            return Work::Idle;
        }
        if let Some((dst, pkt)) = st.retx.pop_front() {
            let rail = self.rail_of(st, dst);
            return Work::Retx { dst, pkt, rail };
        }
        let Some(dst) = st.active.as_ref().map(|a| a.job.dst_fid) else {
            // No active send: start the next queued job, if any.
            match st.send_queue.pop_front() {
                None => {
                    st.sender_busy = false;
                    return Work::Idle;
                }
                Some(job) => {
                    st.active_gen += 1;
                    let gen = st.active_gen;
                    let trace = self.job_trace(&job);
                    let mut active = ActiveSend {
                        job,
                        gen,
                        staged: VecDeque::new(),
                        stage_next: 0,
                        staging: false,
                        injected: 0,
                    };
                    // Zero-length messages and read requests still send
                    // one (empty) fragment.
                    if active.job.total_len == 0 {
                        active.staged.push_back((0, Vec::new(), None));
                        active.stage_next = 0;
                    } else if let JobKind::Coll {
                        coll_id, ref data, ..
                    } = active.job.kind
                    {
                        // Collective contributions are NIC-resident (the
                        // interpreter's accumulator): no host staging DMA,
                        // the single wire fragment is assembled in place.
                        let mut wire = Vec::with_capacity(4 + data.len());
                        wire.extend_from_slice(&coll_id.to_le_bytes());
                        wire.extend_from_slice(data);
                        active.stage_next = active.job.total_len;
                        active.staged.push_back((0, wire, None));
                    }
                    st.active = Some(active);
                    self.stage_more(st);
                    return Work::NewJob { trace };
                }
            }
        };
        let window = self.cfg.reliability.window;
        let window_open = st
            .gbn_tx
            .entry(dst.0)
            .or_insert_with(|| EpochSender::new(window))
            .can_send();
        if !window_open {
            // Closed window or an epoch resync in flight; the ack (or the
            // sync-ack) re-kicks the engine.
            st.sender_busy = false;
            return Work::StallWindow;
        }
        let Some(a) = st.active.as_mut() else {
            return self.protocol_drop(st, "active send vanished mid-step");
        };
        let Some((off, data, sram_lease)) = a.staged.pop_front() else {
            // Nothing staged yet.
            if a.staging || a.stage_next < a.job.total_len {
                st.sender_busy = false;
                return Work::StallStaging;
            }
            // All bytes staged & injected but the job never closed: a
            // protocol-state inconsistency, not a reason to kill the node.
            return self.protocol_drop(st, "send engine inconsistent: open job, nothing staged");
        };
        // The fragment leaves SRAM as it is injected.
        drop(sram_lease);
        let mut header = Self::header_for(&a.job, off, &data);
        a.injected += data.len() as u64;
        let job_done = a.injected >= a.job.total_len;
        let trace = self.job_trace(&a.job);
        let bytes = data.len() as u64;
        let Some(gbn) = st.gbn_tx.get_mut(&dst.0) else {
            return self.protocol_drop(st, "go-back-N sender missing for active destination");
        };
        header.seq = gbn.next_seq();
        header.epoch = gbn.epoch();
        let pkt = header.encode(&data);
        if let Err(e) = gbn.record_sent(header.seq, pkt.clone()) {
            // The window was checked open above, so any failure here is a
            // firmware-state inconsistency — counted, not fatal.
            return self.protocol_drop(st, e.reason());
        }
        if job_done {
            if let Some(a) = st.active.take() {
                if a.job.notify_sender {
                    self.post_send_event(st, &a.job, SendStatus::Ok);
                }
                if let JobKind::Coll { coll_id, .. } = a.job.kind {
                    // A collective send left the NIC: its run may now be
                    // eligible to complete. Coll jobs are never retried at
                    // message level (the interpreter owns recovery), so
                    // they skip the completed-job memory.
                    self.coll_send_injected(st, (a.job.src_port.0, coll_id));
                } else {
                    self.remember_completed(st, a.job);
                }
            }
            // Next job (if any) starts after this fragment's wire time,
            // in the same chain.
        } else {
            self.stage_more(st);
        }
        self.arm_timer(st, dst);
        let rail = self.rail_of(st, dst);
        Work::Frag {
            dst,
            pkt,
            trace,
            seq: header.seq,
            bytes,
            rail,
        }
    }

    /// Abandon the active send after a protocol-state violation: the sender
    /// (if it asked) learns via a Rejected completion, the error is counted
    /// and the flight recorder dumped. Lock held.
    fn protocol_drop(self: &Arc<Self>, st: &mut McpState, reason: &'static str) -> Work {
        let trace = match st.active.take() {
            Some(a) => {
                let t = self.job_trace(&a.job);
                if a.job.notify_sender {
                    self.post_send_event(st, &a.job, SendStatus::Rejected);
                }
                t
            }
            None => TraceId::NONE,
        };
        self.protocol_error(trace, reason);
        Work::Dropped
    }

    fn header_for(job: &SendJob, frag_off: u64, data: &[u8]) -> WireHeader {
        let (kind, offset, total) = match job.kind {
            JobKind::Message => (WireKind::Data, frag_off, job.total_len),
            JobKind::RmaWrite { offset } => (WireKind::Data, offset + frag_off, job.total_len),
            JobKind::RmaReadReq { offset, len } => (WireKind::RmaReadReq, offset, len),
            JobKind::RmaReadData => (WireKind::RmaReadData, frag_off, job.total_len),
            // `offset` carries the plan chunk index; the collective id
            // rides the first 4 payload bytes.
            JobKind::Coll { chunk, .. } => (WireKind::Coll, u64::from(chunk), job.total_len),
        };
        WireHeader {
            kind,
            channel: job.channel,
            src_port: job.src_port,
            dst_port: job.dst_port,
            msg_id: job.msg_id,
            seq: 0,   // stamped by the caller
            epoch: 0, // stamped by the caller
            offset: offset as u32,
            total_len: total as u32,
            frag_len: data.len() as u32,
        }
    }

    /// Start/continue staging fragments from user memory into SRAM.
    /// Must be called with the state lock held.
    fn stage_more(self: &Arc<Self>, st: &mut McpState) {
        let Some(a) = st.active.as_mut() else { return };
        if a.staging || a.staged.len() >= STAGE_AHEAD || a.stage_next >= a.job.total_len {
            return;
        }
        let off = a.stage_next;
        let len = self.frag_cap.min(a.job.total_len - off);
        // SRAM back-pressure: if the staging buffers are exhausted, pause;
        // injection drops a lease per fragment and re-invokes stage_more.
        let Some(lease) = self.sram.try_alloc(len) else {
            self.sram_stalls.inc();
            return;
        };
        a.staging = true;
        a.stage_next = off + len;
        let gen = a.gen;
        let segs = a.job.segments.clone();
        let me = self.clone();
        self.host_dma.submit(len, move |_| {
            let data = read_sg(&me.mem, &segs, off, len).expect("staging DMA faulted");
            let mut st = me.state.lock();
            let Some(a) = st.active.as_mut() else { return };
            if a.gen != gen {
                return; // send was aborted (rejected) while staging
            }
            a.staging = false;
            a.staged.push_back((off, data, Some(lease)));
            me.stage_more(&mut st);
            drop(st);
            me.kick_sender();
        });
    }

    fn remember_completed(&self, st: &mut McpState, job: SendJob) {
        st.completed_order.push_back(job.msg_id);
        st.completed.insert(job.msg_id, job);
        while st.completed_order.len() > COMPLETED_CAP {
            // The ring and the map are maintained together; an empty ring
            // while over capacity means they diverged. Evidence over panic:
            // count it and trip the flight recorder.
            let Some(old) = st.completed_order.pop_front() else {
                self.protocol_error(
                    TraceId::NONE,
                    "completed-order ring empty while over capacity",
                );
                break;
            };
            st.completed.remove(&old);
        }
    }

    /// DMA a send-completion event into the owner's user-space queue.
    fn post_send_event(self: &Arc<Self>, st: &McpState, job: &SendJob, status: SendStatus) {
        let Some(port) = st.ports.get(&job.src_port.0) else {
            return; // port closed meanwhile
        };
        let queues = port.queues.clone();
        let msg_id = job.msg_id;
        let trace = self.job_trace(job);
        let t0 = self.sim.now();
        let me = self.clone();
        self.completion_dmas.inc();
        self.host_dma.submit(self.cfg.mcp.event_bytes, move |_| {
            if me.mt_enabled() {
                me.sim.trace_event(TraceEvent::span(
                    trace,
                    me.node.0,
                    TraceLayer::Dma,
                    stage::DMA_CQ,
                    t0.as_ns(),
                    me.sim.now().as_ns(),
                ));
            }
            queues.push_send(SendEvent { msg_id, status });
        });
    }

    // ---------------- chaos: NIC reset / node crash ----------------

    /// Discard every piece of MCP SRAM state: the send queue, staging
    /// buffers, go-back-N streams, reassembly and read-reply bookkeeping.
    /// Senders that asked for completions get `Rejected` events so no user
    /// chain wedges on a message the dead NIC forgot. Tx epochs are host
    /// state: each stream restarts one *past* its old epoch, so peers adopt
    /// the fresh streams instead of mixing them with pre-reset sequence
    /// numbers.
    fn wipe_sram_state(self: &Arc<Self>) {
        let mut st = self.state.lock();
        for (_, timer) in st.timers.drain() {
            self.sim.cancel(timer);
        }
        // Reject in-progress and queued sends (their payload staging died
        // with the SRAM). Bumping the generation orphans in-flight staging
        // DMA callbacks.
        st.active_gen += 1;
        if let Some(a) = st.active.take() {
            if a.job.notify_sender {
                self.post_send_event(&st, &a.job, SendStatus::Rejected);
            }
        }
        let queued: Vec<SendJob> = st.send_queue.drain(..).collect();
        for job in &queued {
            if job.notify_sender {
                self.post_send_event(&st, job, SendStatus::Rejected);
            }
        }
        // Outstanding one-sided reads will never match a reply now; their
        // owners learn through a Rejected completion.
        let pending: Vec<(u32, PortId)> = st
            .pending_reads
            .drain()
            .map(|(msg_id, pr)| (msg_id, pr.port))
            .collect();
        for (msg_id, port) in pending {
            let Some(p) = st.ports.get(&port.0) else {
                continue;
            };
            let queues = p.queues.clone();
            self.completion_dmas.inc();
            self.host_dma.submit(self.cfg.mcp.event_bytes, move |_| {
                queues.push_send(SendEvent {
                    msg_id,
                    status: SendStatus::Rejected,
                });
            });
        }
        // In-flight collective runs lived in the wiped SRAM: reject each
        // initiator so its poll loop unwedges. Sorted drain: completion
        // order must not depend on hash-map iteration order (determinism).
        let mut dead_colls: Vec<(u16, u32)> = st.colls.keys().copied().collect();
        dead_colls.sort_unstable();
        for key in dead_colls {
            let Some(run) = st.colls.remove(&key) else {
                continue;
            };
            self.coll_post_event(&st, run.setup.port, run.setup.msg_id, SendStatus::Rejected);
        }
        st.coll_early.clear();
        st.coll_early_total = 0;
        st.retx.clear();
        let window = self.cfg.reliability.window;
        let old_epochs: Vec<(u32, u16)> =
            st.gbn_tx.iter().map(|(dst, g)| (*dst, g.epoch())).collect();
        st.gbn_tx.clear();
        for (dst, epoch) in old_epochs {
            st.gbn_tx
                .insert(dst, EpochSender::with_epoch(window, epoch.wrapping_add(1)));
        }
        st.gbn_rx.clear();
        st.incoming.clear();
        st.rejected.clear();
        st.completed.clear();
        st.completed_order.clear();
        st.consec_timeouts.clear();
        st.failovers_no_progress.clear();
        st.dead_paths.clear();
        st.sync_started.clear();
    }

    // ---------------- timers / retransmission ----------------

    fn arm_timer(self: &Arc<Self>, st: &mut McpState, dst: FabricNodeId) {
        if st.timers.contains_key(&dst.0) {
            return;
        }
        let me = self.clone();
        let id = self
            .sim
            .schedule_in(self.cfg.reliability.retransmit_timeout, move |_| {
                me.on_timeout(dst)
            });
        st.timers.insert(dst.0, id);
    }

    fn on_timeout(self: &Arc<Self>, dst: FabricNodeId) {
        {
            let mut st = self.state.lock();
            st.timers.remove(&dst.0);
            if self.is_down(&st) {
                return; // crashed node: timers die with the firmware
            }
            let (syncing, in_flight, epoch, parked) = match st.gbn_tx.get(&dst.0) {
                Some(gbn) => (
                    gbn.is_syncing(),
                    gbn.in_flight(),
                    gbn.epoch(),
                    gbn.parked_epoch(),
                ),
                None => return,
            };
            if !syncing && in_flight == 0 {
                st.consec_timeouts.remove(&dst.0);
                return;
            }
            self.sim.add_count("bcl.timeouts", 1);
            let consec = st.consec_timeouts.entry(dst.0).or_insert(0);
            *consec += 1;
            let exhausted = *consec;
            let threshold = self.cfg.reliability.max_path_timeouts;
            if threshold > 0 && exhausted >= threshold {
                // Retransmission exhausted: the kernel-side trust model says
                // the NIC — not user code — declares the path dead.
                self.declare_path_dead(&mut st, dst);
                self.arm_timer(&mut st, dst);
                return;
            }
            if syncing {
                // The EpochSync itself was lost; re-offer it on the current
                // rail and keep the timer running.
                let rail = self.rail_of(&st, dst);
                self.send_control(rail, dst, Self::sync_header(epoch, parked));
                self.arm_timer(&mut st, dst);
                return;
            }
            let packets: Vec<Bytes> = st.gbn_tx[&dst.0].unacked().cloned().collect();
            for p in packets {
                st.retx.push_back((dst, p));
            }
            self.arm_timer(&mut st, dst);
        }
        self.kick_sender();
    }

    /// Consecutive-retransmission exhaustion tripped for `dst`: count it,
    /// fail over to the next rail (dual-fabric nodes), and start the
    /// epoch-stamped resync handshake. Once every rail has been tried with
    /// no ack progress the destination is advisorily dead. Lock held.
    fn declare_path_dead(self: &Arc<Self>, st: &mut McpState, dst: FabricNodeId) {
        self.path_deaths.inc();
        self.mt_instant(TraceId::NONE, stage::PATH_DEAD);
        st.consec_timeouts.remove(&dst.0);
        let tried = st.failovers_no_progress.entry(dst.0).or_insert(0);
        *tried += 1;
        if *tried as usize >= self.fabrics.len() {
            st.dead_paths.insert(dst.0);
        }
        if self.fabrics.len() > 1 {
            let next = (self.rail_of(st, dst) + 1) % self.fabrics.len();
            st.rail_for.insert(dst.0, next);
            self.rail_failovers.inc();
            self.mt_instant(TraceId::NONE, stage::RAIL_FAILOVER);
        }
        let Some(gbn) = st.gbn_tx.get_mut(&dst.0) else {
            return;
        };
        let epoch = gbn.begin_resync();
        let parked = gbn.parked_epoch();
        st.sync_started.entry(dst.0).or_insert(self.sim.now());
        // Old-epoch packets queued for retransmission would only be counted
        // stale drops at the receiver; the parked stream replays the
        // undelivered tail after the handshake instead.
        st.retx.retain(|(d, _)| *d != dst);
        let rail = self.rail_of(st, dst);
        self.send_control(rail, dst, Self::sync_header(epoch, parked));
    }

    // ---------------- receive engine ----------------

    fn on_packet(self: &Arc<Self>, sim: &Sim, pkt: suca_myrinet::Packet, rail: usize) {
        if self.is_down(&self.state.lock()) {
            // Crashed node: the NIC is off the bus; every arrival is a
            // counted drop until the restart.
            self.node_down_drops.inc();
            let trace = pkt
                .trace
                .map_or(TraceId::NONE, |t| TraceId::new(t.origin, t.msg_id));
            self.mt_instant(trace, stage::DROP_NODE_DOWN);
            return;
        }
        if pkt.corrupted {
            sim.add_count("bcl.crc_dropped", 1);
            if let Some(t) = pkt.trace {
                self.mt_instant(TraceId::new(t.origin, t.msg_id), stage::DROP_CRC);
            }
            return; // CRC check fails; go-back-N recovers via timeout
        }
        let Some((header, payload)) = WireHeader::decode(&pkt.payload) else {
            sim.add_count("bcl.malformed", 1);
            return;
        };
        let src = pkt.src;
        // Arrivals park in a descriptor ring for their processing delay;
        // the matching poll tick is allocation-free.
        match header.kind {
            WireKind::Ack => {
                self.rings.rx_ctrl.lock().push_back(CtrlDesc::Ack {
                    src,
                    epoch: header.epoch,
                    cum: header.seq,
                });
                sim.schedule_poll_in(self.cfg.mcp.ack_process, self.pollers().rx_ctrl);
            }
            WireKind::Reject => {
                self.rings.rx_ctrl.lock().push_back(CtrlDesc::Reject {
                    msg_id: header.msg_id,
                    fatal: header.offset == 1,
                });
                sim.schedule_poll_in(self.cfg.mcp.ack_process, self.pollers().rx_ctrl);
            }
            WireKind::EpochSync => {
                self.rings.rx_ctrl.lock().push_back(CtrlDesc::EpochSync {
                    src,
                    epoch: header.epoch,
                    // msg_id carries the epoch of the stream the peer parked.
                    parked: header.msg_id as u16,
                    rail,
                });
                sim.schedule_poll_in(self.cfg.mcp.ack_process, self.pollers().rx_ctrl);
            }
            WireKind::EpochSyncAck => {
                self.rings.rx_ctrl.lock().push_back(CtrlDesc::EpochSyncAck {
                    src,
                    epoch: header.epoch,
                    old_cum: header.seq,
                });
                sim.schedule_poll_in(self.cfg.mcp.ack_process, self.pollers().rx_ctrl);
            }
            WireKind::Data | WireKind::RmaReadReq | WireKind::RmaReadData | WireKind::Coll => {
                let proc = self.cfg.mcp.recv_per_frag;
                let start = sim.now();
                sim.trace_span(self.track_rx, "mcp: receive process", start, start + proc);
                if self.mt_enabled() {
                    sim.trace_event(
                        TraceEvent::span(
                            self.header_trace(src, &header),
                            self.node.0,
                            TraceLayer::Mcp,
                            stage::RX,
                            start.as_ns(),
                            (start + proc).as_ns(),
                        )
                        .with_seq(header.seq)
                        .with_bytes(header.frag_len as u64),
                    );
                }
                self.rings.rx_data.lock().push_back(DataDesc {
                    src,
                    header,
                    payload,
                    rail,
                });
                sim.schedule_poll_in(proc, self.pollers().rx_data);
            }
        }
    }

    fn on_ack(self: &Arc<Self>, src: FabricNodeId, epoch: u16, cum: u32) {
        {
            let mut st = self.state.lock();
            let Some(gbn) = st.gbn_tx.get_mut(&src.0) else {
                return;
            };
            let Some(freed) = gbn.on_ack(epoch, cum) else {
                // Ack for a stream we already abandoned (or one we are mid-
                // resync on): counted and dropped, never applied.
                self.stale_epoch_drops.inc();
                self.mt_instant(TraceId::NONE, stage::DROP_STALE_EPOCH);
                return;
            };
            if freed == 0 {
                return;
            }
            // Ack progress: the path works again; clear the health counters
            // and any advisory dead mark.
            st.consec_timeouts.remove(&src.0);
            st.failovers_no_progress.remove(&src.0);
            st.dead_paths.remove(&src.0);
            let empty = st.gbn_tx[&src.0].in_flight() == 0;
            if let Some(timer) = st.timers.remove(&src.0) {
                self.sim.cancel(timer);
            }
            if !empty {
                self.arm_timer(&mut st, src);
            }
        }
        self.kick_sender(); // window may have opened
    }

    /// A peer began an epoch resync toward us: adopt the new epoch (capture
    /// the old stream's cumulative ack first) and reply with the cum of the
    /// stream the peer *parked* (`parked` names its epoch) so the peer can
    /// replay exactly the undelivered tail. Duplicate syncs replay the same
    /// captured ack; stale ones are counted drops.
    fn on_epoch_sync(self: &Arc<Self>, src: FabricNodeId, epoch: u16, parked: u16, rail: usize) {
        let reply = {
            let mut st = self.state.lock();
            if self.is_down(&st) {
                return;
            }
            let rx = st.gbn_rx.entry(src.0).or_default();
            match rx.on_sync(epoch, parked) {
                Some(old_cum) => {
                    self.mt_instant(TraceId::NONE, stage::EPOCH_RESYNC);
                    Some(old_cum)
                }
                None => {
                    self.stale_epoch_drops.inc();
                    self.mt_instant(TraceId::NONE, stage::DROP_STALE_EPOCH);
                    None
                }
            }
        };
        if let Some(old_cum) = reply {
            // Answer on the rail the sync arrived on: that is the rail the
            // peer failed over to, and the one it is listening on.
            self.send_control(rail, src, Self::sync_ack_header(epoch, old_cum));
        }
    }

    /// The peer acknowledged our epoch resync with the old stream's
    /// cumulative ack: prune what was delivered, re-stamp the undelivered
    /// tail onto the fresh stream, and resume. This is the moment a failover
    /// recovers — the latency since path death goes into the histogram.
    fn on_epoch_sync_ack(self: &Arc<Self>, src: FabricNodeId, epoch: u16, old_cum: u32) {
        {
            let mut st = self.state.lock();
            if self.is_down(&st) {
                return;
            }
            let tail = {
                let Some(gbn) = st.gbn_tx.get_mut(&src.0) else {
                    return;
                };
                match gbn.on_sync_ack(epoch, old_cum) {
                    Some(tail) => tail,
                    None => {
                        self.stale_epoch_drops.inc();
                        self.mt_instant(TraceId::NONE, stage::DROP_STALE_EPOCH);
                        return;
                    }
                }
            };
            for pkt in tail {
                let Some((mut h, payload)) = WireHeader::decode(&pkt) else {
                    self.protocol_error(TraceId::NONE, "parked resync packet fails to decode");
                    continue;
                };
                let Some(gbn) = st.gbn_tx.get_mut(&src.0) else {
                    return;
                };
                h.seq = gbn.next_seq();
                h.epoch = gbn.epoch();
                let enc = h.encode(&payload);
                if gbn.record_sent(h.seq, enc.clone()).is_err() {
                    // The tail is at most one window, so this cannot close;
                    // evidence over panic if the invariant ever breaks.
                    self.protocol_error(TraceId::NONE, "resync tail overflows fresh window");
                    continue;
                }
                st.retx.push_back((src, enc));
            }
            self.mt_instant(TraceId::NONE, stage::EPOCH_RESYNC);
            st.consec_timeouts.remove(&src.0);
            st.failovers_no_progress.remove(&src.0);
            st.dead_paths.remove(&src.0);
            if let Some(t0) = st.sync_started.remove(&src.0) {
                self.recovery_ns
                    .record(self.sim.now().as_ns().saturating_sub(t0.as_ns()));
            }
            if let Some(timer) = st.timers.remove(&src.0) {
                self.sim.cancel(timer);
            }
            let in_flight = st.gbn_tx.get(&src.0).is_some_and(|g| g.in_flight() > 0);
            if in_flight || !st.retx.is_empty() {
                self.arm_timer(&mut st, src);
            }
        }
        self.kick_sender(); // data sends were paused during the handshake
    }

    fn on_reject(self: &Arc<Self>, msg_id: u32, fatal: bool) {
        let decision = {
            let mut st = self.state.lock();
            // Find the job: active, queued, or recently completed.
            let job = if st.active.as_ref().is_some_and(|a| a.job.msg_id == msg_id) {
                st.active.take().map(|a| a.job)
            } else if let Some(pos) = st.send_queue.iter().position(|j| j.msg_id == msg_id) {
                st.send_queue.remove(pos)
            } else {
                st.completed.remove(&msg_id).inspect(|_| {
                    st.completed_order.retain(|&m| m != msg_id);
                })
            };
            match job {
                None => None,
                Some(mut job) => {
                    job.retries += 1;
                    if fatal || job.retries > self.cfg.reliability.max_message_retries {
                        self.sim.add_count("bcl.msg_failed", 1);
                        self.mt_instant(self.job_trace(&job), stage::MSG_FAILED);
                        if let JobKind::RmaReadReq { .. } = job.kind {
                            st.pending_reads.remove(&msg_id);
                        }
                        self.post_send_event(&st, &job, SendStatus::Rejected);
                        None
                    } else {
                        self.sim.add_count("bcl.msg_retries", 1);
                        self.mt_instant(self.job_trace(&job), stage::MSG_RETRY);
                        // The first injection already posted an Ok
                        // completion; retries are silent (only a final
                        // failure produces another event).
                        job.notify_sender = false;
                        Some(job)
                    }
                }
            }
        };
        if let Some(job) = decision {
            let me = self.clone();
            self.sim
                .schedule_in(self.cfg.reliability.reject_retry_delay, move |_| {
                    me.state.lock().send_queue.push_back(job);
                    me.kick_sender();
                });
        } else {
            self.kick_sender(); // active may have been dropped
        }
    }

    fn send_control(self: &Arc<Self>, rail: usize, dst: FabricNodeId, header: WireHeader) {
        let pkt = header.encode(b"");
        self.rings.tx_ctrl.lock().push_back(TxDesc {
            rail,
            dst,
            pkt,
            meta: None,
        });
        self.sim
            .schedule_poll_in(self.cfg.mcp.ack_send, self.pollers().tx_ctrl);
    }

    fn control_header(
        kind: WireKind,
        epoch: u16,
        msg_id: u32,
        seq: u32,
        offset: u32,
    ) -> WireHeader {
        WireHeader {
            kind,
            channel: ChannelId::SYSTEM,
            src_port: PortId(0),
            dst_port: PortId(0),
            msg_id,
            seq,
            epoch,
            offset,
            total_len: 0,
            frag_len: 0,
        }
    }

    /// Cumulative ack, stamped with the receive stream's epoch so a sender
    /// mid-resync never applies it to the wrong stream.
    fn ack_header(epoch: u16, cum: u32) -> WireHeader {
        Self::control_header(WireKind::Ack, epoch, 0, cum, 0)
    }

    fn reject_header(msg_id: u32, fatal: bool) -> WireHeader {
        Self::control_header(WireKind::Reject, 0, msg_id, 0, u32::from(fatal))
    }

    /// Failover handshake: "I am restarting our stream at `epoch`; tell me
    /// how much of the stream I parked at epoch `parked` (carried in
    /// `msg_id`) you actually delivered".
    fn sync_header(epoch: u16, parked: u16) -> WireHeader {
        Self::control_header(WireKind::EpochSync, epoch, u32::from(parked), 0, 0)
    }

    /// Handshake reply: `seq` carries the *old* stream's cumulative ack so
    /// the sender replays exactly the undelivered tail.
    fn sync_ack_header(epoch: u16, old_cum: u32) -> WireHeader {
        Self::control_header(WireKind::EpochSyncAck, epoch, 0, old_cum, 0)
    }

    fn on_data(
        self: &Arc<Self>,
        src: FabricNodeId,
        header: WireHeader,
        payload: Bytes,
        rail: usize,
    ) {
        let (epoch, cum) = {
            let mut st = self.state.lock();
            let rx = st.gbn_rx.entry(src.0).or_default();
            // Data from a *newer* epoch adopts it implicitly (the peer's NIC
            // was reset and restarted its stream); older epochs are counted
            // stale drops with no ack — the peer is already past them.
            let verdict = rx.on_data(header.epoch, header.seq);
            let epoch = rx.epoch();
            let cum = rx.cum_ack();
            match verdict {
                EpochVerdict::Gbn(GbnVerdict::Accept) => {}
                EpochVerdict::Gbn(GbnVerdict::Duplicate | GbnVerdict::OutOfOrder) => {
                    self.sim.add_count("bcl.rx_discarded", 1);
                    self.mt_instant(self.header_trace(src, &header), stage::RX_DISCARD);
                    drop(st);
                    self.send_control(rail, src, Self::ack_header(epoch, cum));
                    return;
                }
                EpochVerdict::Stale => {
                    self.stale_epoch_drops.inc();
                    self.mt_instant(self.header_trace(src, &header), stage::DROP_STALE_EPOCH);
                    return;
                }
            }
            self.accept_data(&mut st, src, header, payload, rail);
            (epoch, cum)
        };
        // Ack on the arrival rail so the reverse path mirrors the one the
        // sender actually used (its old rail may be dark).
        self.send_control(rail, src, Self::ack_header(epoch, cum));
    }

    /// Handle an accepted, in-order data packet. Lock held.
    fn accept_data(
        self: &Arc<Self>,
        st: &mut McpState,
        src: FabricNodeId,
        header: WireHeader,
        payload: Bytes,
        rail: usize,
    ) {
        match header.kind {
            WireKind::Data => match header.channel.kind {
                ChannelKind::System | ChannelKind::Normal => {
                    self.deliver_message(st, src, header, payload, rail)
                }
                ChannelKind::Open => self.rma_write(st, src, header, payload),
            },
            WireKind::RmaReadReq => self.rma_read_request(st, src, header, rail),
            WireKind::RmaReadData => self.rma_read_data(st, src, header, payload),
            WireKind::Coll => self.coll_rx(st, src, header, payload),
            _ => {
                // Control kinds are dispatched before accept_data; reaching
                // here means the demux and the GBN accept path disagree.
                self.protocol_error(
                    self.header_trace(src, &header),
                    "control packet reached the data-accept path",
                );
            }
        }
    }

    fn deliver_message(
        self: &Arc<Self>,
        st: &mut McpState,
        src: FabricNodeId,
        header: WireHeader,
        payload: Bytes,
        rail: usize,
    ) {
        let key = (src.0, header.msg_id);
        let trace = TraceId::new(src.0, header.msg_id);
        if st.rejected.contains(&key) {
            if header.offset as u64 + payload.len() as u64 >= header.total_len as u64 {
                st.rejected.remove(&key); // last fragment seen; forget
            }
            return;
        }
        if header.offset == 0 {
            // First fragment: find a destination buffer.
            let Some(port) = st.ports.get_mut(&header.dst_port.0) else {
                self.sim.add_count("bcl.rx_no_port", 1);
                self.mt_instant(trace, stage::DROP_NO_PORT);
                return;
            };
            let (target, loc) = match header.channel.kind {
                ChannelKind::System => match port.pool.claim() {
                    Some(idx) => (
                        port.pool.segments(idx).to_vec(),
                        RecvDataLoc::SystemBuffer(idx),
                    ),
                    None => {
                        // Paper §2.2: "The incoming message will be discarded
                        // if there is no free buffer in the pool."
                        self.sim.add_count("bcl.sys_pool_discard", 1);
                        self.mt_instant(trace, stage::DROP_NO_BUFFER);
                        if header.total_len as u64 > payload.len() as u64 {
                            st.rejected.insert(key);
                        }
                        return;
                    }
                },
                ChannelKind::Normal => match port.normal.remove(&header.channel.index) {
                    Some(segs) => (segs, RecvDataLoc::Posted),
                    None => {
                        // Rendezvous violated: tell the sender to retry.
                        self.sim.add_count("bcl.rx_not_ready", 1);
                        self.sim.add_count("mcp.rejects_sent", 1);
                        self.mt_instant(trace, stage::REJECT_SENT);
                        if header.total_len as u64 > payload.len() as u64 {
                            st.rejected.insert(key);
                        }
                        self.send_control(rail, src, Self::reject_header(header.msg_id, false));
                        return;
                    }
                },
                ChannelKind::Open => unreachable!(),
            };
            if (header.total_len as u64) > sg_total(&target) {
                // Message longer than the receive buffer: refuse (fatal).
                self.sim.add_count("bcl.rx_too_big", 1);
                self.sim.add_count("mcp.rejects_sent", 1);
                self.mt_instant(trace, stage::REJECT_SENT);
                if header.total_len as u64 > payload.len() as u64 {
                    st.rejected.insert(key);
                }
                self.send_control(rail, src, Self::reject_header(header.msg_id, true));
                return;
            }
            st.incoming.insert(
                key,
                Incoming {
                    port: header.dst_port,
                    channel: header.channel,
                    src_port: header.src_port,
                    total: header.total_len as u64,
                    received: 0,
                    target,
                    loc,
                },
            );
        }
        let Some(inc) = st.incoming.get(&key) else {
            self.sim.add_count("bcl.rx_orphan_frag", 1);
            self.mt_instant(trace, stage::RX_DISCARD);
            return;
        };
        // DMA the fragment into its place in the user buffer.
        let segs = inc.target.clone();
        let off = header.offset as u64;
        let me = self.clone();
        let len = payload.len() as u64;
        let seq = header.seq;
        let t0 = self.sim.now();
        self.host_dma.submit(len, move |_| {
            write_sg(&me.mem, &segs, off, &payload).expect("recv DMA faulted");
            if me.mt_enabled() {
                me.sim.trace_event(
                    TraceEvent::span(
                        trace,
                        me.node.0,
                        TraceLayer::Dma,
                        stage::DMA_DATA,
                        t0.as_ns(),
                        me.sim.now().as_ns(),
                    )
                    .with_seq(seq)
                    .with_bytes(len),
                );
            }
            let mut st = me.state.lock();
            let done = {
                let Some(inc) = st.incoming.get_mut(&key) else {
                    return;
                };
                inc.received += len;
                inc.received >= inc.total
            };
            if done {
                let Some(inc) = st.incoming.remove(&key) else {
                    me.protocol_error(trace, "incoming message vanished mid-DMA");
                    return;
                };
                me.post_recv_event(&st, src, header.msg_id, inc);
            }
        });
    }

    /// DMA a receive-completion event into the user queue. Lock held.
    fn post_recv_event(
        self: &Arc<Self>,
        st: &McpState,
        src: FabricNodeId,
        msg_id: u32,
        inc: Incoming,
    ) {
        let Some(port) = st.ports.get(&inc.port.0) else {
            return;
        };
        let queues = port.queues.clone();
        let ev = RecvEvent {
            src: ProcAddr {
                node: NodeId(src.0),
                port: inc.src_port,
            },
            channel: inc.channel,
            len: inc.total,
            msg_id,
            data: inc.loc,
        };
        let start = self.sim.now();
        let d = SimDuration::for_bytes(self.cfg.mcp.event_bytes, self.cfg.pci.dma_bytes_per_sec)
            + self.cfg.pci.dma_setup;
        self.sim.trace_span(
            self.track_rx,
            "dma: completion event to user queue",
            start,
            start + d,
        );
        self.completion_dmas.inc();
        let trace = TraceId::new(src.0, msg_id);
        let me = self.clone();
        self.host_dma.submit(self.cfg.mcp.event_bytes, move |_| {
            if me.mt_enabled() {
                me.sim.trace_event(TraceEvent::span(
                    trace,
                    me.node.0,
                    TraceLayer::Dma,
                    stage::DMA_CQ,
                    start.as_ns(),
                    me.sim.now().as_ns(),
                ));
            }
            queues.push_recv(ev);
        });
    }

    fn rma_write(
        self: &Arc<Self>,
        st: &mut McpState,
        src: FabricNodeId,
        header: WireHeader,
        payload: Bytes,
    ) {
        let Some(port) = st.ports.get(&header.dst_port.0) else {
            self.sim.add_count("bcl.rx_no_port", 1);
            self.mt_instant(TraceId::new(src.0, header.msg_id), stage::DROP_NO_PORT);
            return;
        };
        let Some(segs) = port.open.get(&header.channel.index) else {
            self.sim.add_count("bcl.rma_bad_channel", 1);
            return;
        };
        let end = header.offset as u64 + payload.len() as u64;
        if end > sg_total(segs) {
            // NIC-side bounds check: one-sided writes cannot scribble past
            // the bound window.
            self.sim.add_count("bcl.rma_oob", 1);
            return;
        }
        let segs = segs.clone();
        let me = self.clone();
        let off = header.offset as u64;
        let len = payload.len() as u64;
        let trace = TraceId::new(src.0, header.msg_id);
        let seq = header.seq;
        let t0 = self.sim.now();
        self.host_dma.submit(len, move |_| {
            write_sg(&me.mem, &segs, off, &payload).expect("RMA write DMA faulted");
            if me.mt_enabled() {
                me.sim.trace_event(
                    TraceEvent::span(
                        trace,
                        me.node.0,
                        TraceLayer::Dma,
                        stage::DMA_DATA,
                        t0.as_ns(),
                        me.sim.now().as_ns(),
                    )
                    .with_seq(seq)
                    .with_bytes(len),
                );
            }
        });
    }

    fn rma_read_request(
        self: &Arc<Self>,
        st: &mut McpState,
        src: FabricNodeId,
        header: WireHeader,
        rail: usize,
    ) {
        let Some(port) = st.ports.get(&header.dst_port.0) else {
            self.sim.add_count("bcl.rx_no_port", 1);
            self.send_control(rail, src, Self::reject_header(header.msg_id, true));
            return;
        };
        let Some(segs) = port.open.get(&header.channel.index) else {
            self.sim.add_count("bcl.rma_bad_channel", 1);
            self.send_control(rail, src, Self::reject_header(header.msg_id, true));
            return;
        };
        let offset = header.offset as u64;
        let len = header.total_len as u64;
        if offset + len > sg_total(segs) {
            self.sim.add_count("bcl.rma_oob", 1);
            self.send_control(rail, src, Self::reject_header(header.msg_id, true));
            return;
        }
        let reply_segs = crate::sg::slice_sg(segs, offset, len);
        st.send_queue.push_back(SendJob {
            src_port: header.dst_port,
            dst_fid: src,
            dst_port: header.src_port,
            channel: header.channel,
            msg_id: header.msg_id,
            segments: reply_segs,
            total_len: len,
            kind: JobKind::RmaReadData,
            retries: 0,
            notify_sender: false,
        });
        // kick_sender needs the lock we currently hold; defer.
        let me = self.clone();
        self.sim
            .schedule_in(SimDuration::ZERO, move |_| me.kick_sender());
    }

    fn rma_read_data(
        self: &Arc<Self>,
        st: &mut McpState,
        _src: FabricNodeId,
        header: WireHeader,
        payload: Bytes,
    ) {
        let msg_id = header.msg_id;
        // The read reply joins the requesting chain, which is this node's.
        let trace = TraceId::new(self.node.0, msg_id);
        let Some(pr) = st.pending_reads.get(&msg_id) else {
            // A reply with no matching outstanding read request: the
            // firmware's request/reply bookkeeping is out of sync.
            self.sim.add_count("bcl.rx_orphan_read_data", 1);
            self.protocol_error(trace, "read-reply data with no pending read request");
            return;
        };
        let segs = pr.segments.clone();
        let off = header.offset as u64;
        let len = payload.len() as u64;
        let seq = header.seq;
        let t0 = self.sim.now();
        let me = self.clone();
        self.host_dma.submit(len, move |_| {
            write_sg(&me.mem, &segs, off, &payload).expect("read-reply DMA faulted");
            if me.mt_enabled() {
                me.sim.trace_event(
                    TraceEvent::span(
                        trace,
                        me.node.0,
                        TraceLayer::Dma,
                        stage::DMA_DATA,
                        t0.as_ns(),
                        me.sim.now().as_ns(),
                    )
                    .with_seq(seq)
                    .with_bytes(len),
                );
            }
            let mut st = me.state.lock();
            let done = {
                let Some(pr) = st.pending_reads.get_mut(&msg_id) else {
                    return;
                };
                pr.received += len;
                pr.received >= pr.total
            };
            if done {
                let Some(pr) = st.pending_reads.remove(&msg_id) else {
                    me.protocol_error(trace, "pending read vanished mid-DMA");
                    return;
                };
                if let Some(port) = st.ports.get(&pr.port.0) {
                    let queues = port.queues.clone();
                    let me2 = me.clone();
                    let t1 = me.sim.now();
                    me.host_dma.submit(me.cfg.mcp.event_bytes, move |_| {
                        if me2.mt_enabled() {
                            me2.sim.trace_event(TraceEvent::span(
                                trace,
                                me2.node.0,
                                TraceLayer::Dma,
                                stage::DMA_CQ,
                                t1.as_ns(),
                                me2.sim.now().as_ns(),
                            ));
                        }
                        queues.push_send(SendEvent {
                            msg_id,
                            status: SendStatus::Ok,
                        });
                    });
                }
            }
        });
    }

    // ---------------- collective plan interpreter ----------------

    /// Kernel module posted a collective descriptor. Registers the run,
    /// merges contributions that beat the descriptor to the NIC, then
    /// fetches the pinned contribution by DMA and starts the schedule.
    fn post_collective(self: &Arc<Self>, setup: CollSetup) {
        let key = (setup.port.0, setup.coll_id);
        let trace = TraceId::new(self.node.0, setup.msg_id);
        let t0 = self.sim.now();
        let segs = setup.payload.clone();
        let len = setup.payload_len;
        {
            let mut st = self.state.lock();
            if !st.ports.contains_key(&setup.port.0) {
                self.protocol_error(trace, "collective descriptor on unregistered port");
                return;
            }
            if st.colls.contains_key(&key) {
                // A duplicate id would cross-wire two collectives'
                // arrivals; refuse the newcomer, reject its initiator.
                self.coll_post_event(&st, setup.port, setup.msg_id, SendStatus::Rejected);
                self.protocol_error(trace, "duplicate collective id on port");
                return;
            }
            let mut run = CollRun {
                acc: Vec::new(),
                staged: false,
                step: 0,
                sent_current: false,
                outstanding_sends: 0,
                inbox: HashMap::new(),
                setup,
            };
            if let Some(early) = st.coll_early.remove(&key) {
                st.coll_early_total -= early.len();
                for a in early {
                    run.inbox
                        .entry((a.src_node, a.src_port, a.chunk))
                        .or_default()
                        .push_back(a.data);
                }
            }
            st.colls.insert(key, run);
        }
        // Fetch the contribution into the SRAM accumulator; the COLL_POST
        // span covers descriptor post through staging DMA.
        let me = self.clone();
        self.host_dma.submit(len, move |_| {
            let data = if len == 0 {
                Vec::new()
            } else {
                read_sg(&me.mem, &segs, 0, len).expect("collective payload DMA faulted")
            };
            if me.mt_enabled() {
                me.sim.trace_event(
                    TraceEvent::span(
                        trace,
                        me.node.0,
                        TraceLayer::Mcp,
                        stage::COLL_POST,
                        t0.as_ns(),
                        me.sim.now().as_ns(),
                    )
                    .with_bytes(len),
                );
            }
            let mut st = me.state.lock();
            let Some(run) = st.colls.get_mut(&key) else {
                return; // wiped meanwhile; the initiator was already rejected
            };
            run.acc = data;
            run.staged = true;
            me.coll_advance(&mut st, key);
        });
    }

    /// Run one collective's interpreter until it parks — waiting on
    /// arrivals, on the per-step interpreter delay, or on outstanding wire
    /// sends — or completes. Lock held.
    fn coll_advance(self: &Arc<Self>, st: &mut McpState, key: (u16, u32)) {
        // Step entry: fire this step's sends exactly once. `None` means the
        // schedule is finished and ready to complete.
        let fire = match st.colls.get_mut(&key) {
            None => return,
            Some(run) => {
                if !run.staged {
                    return;
                }
                match run.setup.steps.get(run.step) {
                    None => {
                        if run.outstanding_sends > 0 {
                            return; // completion waits for the last injection
                        }
                        None
                    }
                    Some(step) => {
                        if run.sent_current {
                            Some(None)
                        } else {
                            run.sent_current = true;
                            let wire = step
                                .send_to
                                .iter()
                                .filter(|d| d.node.0 != self.node.0)
                                .count() as u32;
                            run.outstanding_sends += wire;
                            Some(Some((
                                step.send_to.clone(),
                                step.chunk,
                                run.acc.clone(),
                                run.setup.coll_id,
                                run.setup.msg_id,
                                run.setup.port,
                            )))
                        }
                    }
                }
            }
        };
        let Some(fire) = fire else {
            let Some(run) = st.colls.remove(&key) else {
                return;
            };
            self.coll_complete(st, run);
            return;
        };
        if let Some((send_to, chunk, acc, coll_id, msg_id, src_port)) = fire {
            let mut queued = false;
            for dst in send_to {
                if dst.node.0 == self.node.0 {
                    // Co-located participant on this same NIC: a local copy
                    // step — one interpreter tick, no wire, no go-back-N.
                    let me = self.clone();
                    let data = acc.clone();
                    let dkey = (dst.port.0, coll_id);
                    let from_port = src_port.0;
                    self.sim.schedule_in(self.cfg.mcp.coll_step, move |_| {
                        let mut st = me.state.lock();
                        me.mt_instant(TraceId::new(me.node.0, msg_id), stage::COLL_COMBINE);
                        me.coll_deliver(&mut st, dkey, me.node.0, from_port, chunk, data);
                    });
                } else {
                    st.send_queue.push_back(SendJob {
                        src_port,
                        dst_fid: FabricNodeId(dst.node.0),
                        dst_port: dst.port,
                        channel: ChannelId::SYSTEM,
                        msg_id,
                        segments: Vec::new(),
                        total_len: 4 + acc.len() as u64,
                        kind: JobKind::Coll {
                            coll_id,
                            chunk,
                            data: acc.clone(),
                        },
                        retries: 0,
                        notify_sender: false,
                    });
                    queued = true;
                }
            }
            if queued {
                // kick_sender needs the lock we currently hold; defer.
                let me = self.clone();
                self.sim
                    .schedule_in(SimDuration::ZERO, move |_| me.kick_sender());
            }
        }
        // Step exit: consume one arrival per `recv_from` edge, folding (or
        // adopting) in listed order.
        let folded = {
            let Some(run) = st.colls.get_mut(&key) else {
                return;
            };
            let Some(step) = run.setup.steps.get(run.step).cloned() else {
                return; // completion handled by the entry phase above
            };
            let mut need: HashMap<(u32, u16, u32), usize> = HashMap::new();
            for p in &step.recv_from {
                *need.entry((p.node.0, p.port.0, step.chunk)).or_default() += 1;
            }
            if !need
                .iter()
                .all(|(edge, k)| run.inbox.get(edge).map_or(0, |q| q.len()) >= *k)
            {
                return; // parked until the missing contributions arrive
            }
            let mut ok = true;
            for p in &step.recv_from {
                let edge = (p.node.0, p.port.0, step.chunk);
                let Some(v) = run.inbox.get_mut(&edge).and_then(|q| q.pop_front()) else {
                    ok = false;
                    break;
                };
                if step.adopt {
                    run.acc = v;
                } else if !run.setup.op.fold_bytes(&mut run.acc, &v) {
                    ok = false;
                    break;
                }
            }
            run.inbox.retain(|_, q| !q.is_empty());
            if ok {
                run.step += 1;
                run.sent_current = false;
                Ok(step.recv_from.len() as u64)
            } else {
                Err(())
            }
        };
        match folded {
            Err(()) => {
                // Readiness was checked and plans are validated before a
                // descriptor reaches the NIC, so a mismatch here is
                // corrupted firmware state: evidence plus a rejected
                // initiator, never a panic.
                let Some(run) = st.colls.remove(&key) else {
                    return;
                };
                self.coll_post_event(st, run.setup.port, run.setup.msg_id, SendStatus::Rejected);
                self.protocol_error(
                    TraceId::new(self.node.0, run.setup.msg_id),
                    "collective fold length mismatch",
                );
            }
            Ok(combines) => {
                // Charge the interpreter's per-step work (one tick for
                // pure-send steps, one per combine otherwise) and continue.
                let me = self.clone();
                let d = self.cfg.mcp.coll_step * combines.max(1);
                self.sim.schedule_in(d, move |_| {
                    let mut st = me.state.lock();
                    me.coll_advance(&mut st, key);
                });
            }
        }
    }

    /// The send engine finished injecting one of a run's wire sends; the
    /// run may now be eligible to complete. Lock held.
    fn coll_send_injected(self: &Arc<Self>, st: &mut McpState, key: (u16, u32)) {
        {
            let Some(run) = st.colls.get_mut(&key) else {
                return;
            };
            run.outstanding_sends = run.outstanding_sends.saturating_sub(1);
        }
        self.coll_advance(st, key);
    }

    /// One contribution (wire arrival or local copy) for `key`. Lock held.
    fn coll_deliver(
        self: &Arc<Self>,
        st: &mut McpState,
        key: (u16, u32),
        src_node: u32,
        src_port: u16,
        chunk: u32,
        data: Vec<u8>,
    ) {
        if let Some(run) = st.colls.get_mut(&key) {
            run.inbox
                .entry((src_node, src_port, chunk))
                .or_default()
                .push_back(data);
            self.coll_advance(st, key);
            return;
        }
        // The peer's schedule outran this node's descriptor: park the
        // contribution until `post_collective` claims it. Bounded —
        // overflow is a counted drop that trips the flight recorder.
        if st.coll_early_total >= COLL_EARLY_CAP {
            self.sim.add_count("mcp.coll_early_drops", 1);
            self.protocol_error(TraceId::NONE, "collective early-arrival buffer overflow");
            return;
        }
        st.coll_early_total += 1;
        st.coll_early.entry(key).or_default().push(CollArrival {
            src_node,
            src_port,
            chunk,
            data,
        });
    }

    /// An accepted `WireKind::Coll` packet: strip the 4-byte collective id
    /// sub-header and hand the contribution to the interpreter. Lock held.
    fn coll_rx(
        self: &Arc<Self>,
        st: &mut McpState,
        src: FabricNodeId,
        header: WireHeader,
        payload: Bytes,
    ) {
        let trace = self.header_trace(src, &header);
        if payload.len() < 4 {
            self.protocol_error(trace, "collective packet shorter than its id");
            return;
        }
        let coll_id = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]);
        // The combine is attributed to the *sender's* chain: its message
        // ends by merging into this NIC's accumulator, not at a host.
        self.mt_instant(trace, stage::COLL_COMBINE);
        self.coll_deliver(
            st,
            (header.dst_port.0, coll_id),
            src.0,
            header.src_port.0,
            header.offset,
            payload[4..].to_vec(),
        );
    }

    /// Schedule finished and every wire send injected: DMA the accumulator
    /// into the pinned result buffer, then the completion event the
    /// initiator is polling. Lock held.
    fn coll_complete(self: &Arc<Self>, st: &mut McpState, run: CollRun) {
        let trace = TraceId::new(self.node.0, run.setup.msg_id);
        if run.acc.len() as u64 != run.setup.result_len {
            self.protocol_error(trace, "collective result length mismatch");
            self.coll_post_event(st, run.setup.port, run.setup.msg_id, SendStatus::Rejected);
            return;
        }
        self.mt_instant(trace, stage::COLL_DONE);
        if run.setup.result_len == 0 {
            self.coll_post_event(st, run.setup.port, run.setup.msg_id, SendStatus::Ok);
            return;
        }
        let me = self.clone();
        let segs = run.setup.result.clone();
        let len = run.setup.result_len;
        let port = run.setup.port;
        let msg_id = run.setup.msg_id;
        let data = run.acc;
        let t0 = self.sim.now();
        self.host_dma.submit(len, move |_| {
            write_sg(&me.mem, &segs, 0, &data).expect("collective result DMA faulted");
            if me.mt_enabled() {
                me.sim.trace_event(
                    TraceEvent::span(
                        trace,
                        me.node.0,
                        TraceLayer::Dma,
                        stage::DMA_DATA,
                        t0.as_ns(),
                        me.sim.now().as_ns(),
                    )
                    .with_bytes(len),
                );
            }
            let st = me.state.lock();
            me.coll_post_event(&st, port, msg_id, SendStatus::Ok);
        });
    }

    /// DMA a collective completion event into the initiator's send queue.
    /// Lock held (shared borrow suffices).
    fn coll_post_event(
        self: &Arc<Self>,
        st: &McpState,
        port: PortId,
        msg_id: u32,
        status: SendStatus,
    ) {
        let Some(p) = st.ports.get(&port.0) else {
            return; // port closed meanwhile
        };
        let queues = p.queues.clone();
        let trace = TraceId::new(self.node.0, msg_id);
        let t0 = self.sim.now();
        let me = self.clone();
        self.completion_dmas.inc();
        self.host_dma.submit(self.cfg.mcp.event_bytes, move |_| {
            if me.mt_enabled() {
                me.sim.trace_event(TraceEvent::span(
                    trace,
                    me.node.0,
                    TraceLayer::Dma,
                    stage::DMA_CQ,
                    t0.as_ns(),
                    me.sim.now().as_ns(),
                ));
            }
            queues.push_send(SendEvent { msg_id, status });
        });
    }
}
