//! # suca — Semi-User-Level Communication Architecture
//!
//! Facade crate re-exporting the whole reproduction of Meng, Ma, He, Xiao,
//! Xu, *"Semi-User-Level Communication Architecture"*, IPPS 2002: the BCL
//! protocol (the paper's contribution) plus every substrate it runs on
//! (simulated Myrinet & nwrc mesh SANs, host memory, PCI, OS kernel) and the
//! layers above it (EADI-2, MPI-like, PVM-like).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system map.

#![warn(missing_docs)]

pub use suca_baselines as baselines;
pub use suca_bcl as bcl;
pub use suca_chaos as chaos;
pub use suca_cluster as cluster;
pub use suca_eadi as eadi;
pub use suca_mem as mem;
pub use suca_mesh as mesh;
pub use suca_mpi as mpi;
pub use suca_myrinet as myrinet;
pub use suca_os as os;
pub use suca_pci as pci;
pub use suca_pvm as pvm;
pub use suca_sim as sim;

/// Commonly used items in one import.
pub mod prelude {
    pub use suca_sim::{ActorCtx, RunOutcome, Sim, SimDuration, SimTime};
}
