//! Property-based tests on the core invariants:
//!
//! * any payload, any size mix → delivered intact and in order through the
//!   full BCL stack (including fragmentation), with or without faults;
//! * the wire decoder never panics on arbitrary bytes (corrupted packets
//!   reach it on real hardware);
//! * scatter/gather slicing is consistent with flat byte ranges;
//! * go-back-N delivers every packet exactly once, in order, under any
//!   loss pattern.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use proptest::prelude::*;

use suca::bcl::reliable::{
    EpochReceiver, EpochSender, EpochVerdict, GbnReceiver, GbnSender, GbnVerdict,
};
use suca::bcl::wire::WireHeader;
use suca::bcl::ChannelId;
use suca::cluster::{ClusterSpec, SanKind, SimBarrier};
use suca::myrinet::FaultPlan;
use suca::prelude::*;

/// Ship `payloads` through BCL node 0 → node 1 under `fault`, asserting
/// intact in-order delivery. Uses normal channels (rendezvous) so arbitrary
/// sizes work.
fn roundtrip_payloads(payloads: Vec<Vec<u8>>, fault: FaultPlan, seed: u64) {
    let mut spec = ClusterSpec::dawning3000(2).with_seed(seed);
    if let SanKind::Myrinet(ref mut cfg) = spec.san {
        cfg.fault = fault;
    }
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr: Arc<Mutex<Option<suca::bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    let expect = payloads.clone();

    let b2 = barrier.clone();
    let a2 = addr.clone();
    cluster.spawn_process(1, "rx", move |ctx, env| {
        let port = env.open_port(ctx);
        *a2.lock() = Some(port.addr());
        // Pre-post channels for the first lap (one channel per message,
        // modulo 8); later messages re-post on consumption below.
        for (i, p) in expect.iter().take(8).enumerate() {
            port.post_recv(ctx, i as u16, p.len().max(1) as u64)
                .expect("post");
        }
        b2.wait(ctx);
        let mut got = 0usize;
        while got < expect.len() {
            let ev = port.wait_recv(ctx);
            let data = port.recv_bytes(ctx, &ev).expect("data");
            assert_eq!(
                data,
                expect[got],
                "message {got} damaged (len {} vs {})",
                data.len(),
                expect[got].len()
            );
            got += 1;
            // Re-post the channel for a later message that reuses it.
            let next = got + 7;
            if next < expect.len() {
                port.post_recv(ctx, (next % 8) as u16, expect[next].len().max(1) as u64)
                    .expect("re-post");
            }
        }
    });
    let b3 = barrier.clone();
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        b3.wait(ctx);
        let dst = addr.lock().expect("rx ready");
        for (i, p) in payloads.iter().enumerate() {
            let buf = port.alloc_buffer(p.len().max(1) as u64).expect("alloc");
            port.write_buffer(buf, p).expect("fill");
            port.send(
                ctx,
                dst,
                ChannelId::normal((i % 8) as u16),
                buf,
                p.len() as u64,
            )
            .expect("send");
            let _ = port.wait_send(ctx); // pace: one in flight per channel lap
        }
    });
    assert_eq!(sim.run(), RunOutcome::Completed, "proptest workload hung");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case simulates a whole cluster; keep bounded
        ..ProptestConfig::default()
    })]

    #[test]
    fn any_payload_mix_delivered_intact(
        payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..20_000),
            1..6
        ),
        seed in any::<u64>(),
    ) {
        roundtrip_payloads(payloads, FaultPlan::NONE, seed);
    }

    #[test]
    fn any_payload_mix_survives_faults(
        payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..12_000),
            1..4
        ),
        seed in any::<u64>(),
        drop in 0.0f64..0.08,
        corrupt in 0.0f64..0.08,
    ) {
        roundtrip_payloads(
            payloads,
            FaultPlan { drop_prob: drop, corrupt_prob: corrupt },
            seed,
        );
    }
}

proptest! {
    #[test]
    fn wire_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Any outcome is fine; panicking is not (firmware must survive
        // corrupted packets).
        let _ = WireHeader::decode(&Bytes::from(bytes));
    }

    #[test]
    fn wire_roundtrip_any_payload(payload in prop::collection::vec(any::<u8>(), 0..4064)) {
        let header = WireHeader {
            kind: suca::bcl::wire::WireKind::Data,
            channel: ChannelId::normal(1),
            src_port: suca::bcl::PortId(3),
            dst_port: suca::bcl::PortId(4),
            msg_id: 9,
            seq: 17,
            offset: 0,
            total_len: payload.len() as u32,
            frag_len: payload.len() as u32,
            epoch: 0,
        };
        let encoded = header.encode(&payload);
        let (h2, p2) = WireHeader::decode(&encoded).expect("own encoding parses");
        prop_assert_eq!(h2, header);
        prop_assert_eq!(&p2[..], &payload[..]);
    }

    #[test]
    fn wire_roundtrip_any_header(
        kind_idx in 0usize..7,
        chan_kind_idx in 0usize..3,
        chan_index in any::<u16>(),
        src in any::<u16>(),
        dst in any::<u16>(),
        msg_id in any::<u32>(),
        seq in any::<u32>(),
        offset in any::<u32>(),
        total_len in any::<u32>(),
        epoch in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..4064),
    ) {
        use suca::bcl::wire::WireKind;
        let kinds = [
            WireKind::Data,
            WireKind::Ack,
            WireKind::Reject,
            WireKind::RmaReadReq,
            WireKind::RmaReadData,
            WireKind::EpochSync,
            WireKind::EpochSyncAck,
        ];
        let chan_kinds = [
            suca::bcl::ChannelId::SYSTEM,
            suca::bcl::ChannelId::normal(chan_index),
            suca::bcl::ChannelId::open(chan_index),
        ];
        let header = WireHeader {
            kind: kinds[kind_idx],
            channel: chan_kinds[chan_kind_idx],
            src_port: suca::bcl::PortId(src),
            dst_port: suca::bcl::PortId(dst),
            msg_id,
            seq,
            offset,
            total_len,
            frag_len: payload.len() as u32,
            epoch,
        };
        let encoded = header.encode(&payload);
        let (h2, p2) = WireHeader::decode(&encoded).expect("own encoding parses");
        prop_assert_eq!(h2, header);
        prop_assert_eq!(&p2[..], &payload[..]);
    }

    #[test]
    fn wire_truncation_at_any_point_is_rejected(
        payload in prop::collection::vec(any::<u8>(), 0..512),
        cut_seed in any::<usize>(),
    ) {
        // Chopping any tail off a valid packet must yield a clean parse
        // failure — short header and short payload alike.
        let header = suca::bcl::wire::WireHeader {
            kind: suca::bcl::wire::WireKind::Data,
            channel: ChannelId::normal(1),
            src_port: suca::bcl::PortId(3),
            dst_port: suca::bcl::PortId(4),
            msg_id: 9,
            seq: 17,
            offset: 0,
            total_len: payload.len() as u32,
            frag_len: payload.len() as u32,
            epoch: 0,
        };
        let encoded = header.encode(&payload);
        let cut = cut_seed % encoded.len(); // 0..len, strictly short of full
        prop_assert!(WireHeader::decode(&encoded.slice(..cut)).is_none());
    }

    #[test]
    fn wire_invalid_kind_bytes_are_rejected(
        bad_kind in 8u8..=255, // 1..=7 are the valid WireKind encodings; 0 is reserved
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let header = suca::bcl::wire::WireHeader {
            kind: suca::bcl::wire::WireKind::Data,
            channel: ChannelId::normal(1),
            src_port: suca::bcl::PortId(3),
            dst_port: suca::bcl::PortId(4),
            msg_id: 9,
            seq: 17,
            offset: 0,
            total_len: payload.len() as u32,
            frag_len: payload.len() as u32,
            epoch: 0,
        };
        let mut raw = header.encode(&payload).to_vec();
        raw[0] = bad_kind;
        prop_assert!(WireHeader::decode(&Bytes::from(raw.clone())).is_none());
        // Kind byte 0 is reserved/invalid too.
        raw[0] = 0;
        prop_assert!(WireHeader::decode(&Bytes::from(raw)).is_none());
    }

    #[test]
    fn gbn_delivers_exactly_once_in_order_under_any_losses(
        n in 1usize..60,
        loss_pattern in prop::collection::vec(any::<bool>(), 0..600),
    ) {
        let mut tx = GbnSender::new(8);
        let mut rx = GbnReceiver::new();
        let mut delivered: Vec<u32> = Vec::new();
        let mut next_to_queue = 0u32;
        let mut losses = loss_pattern.into_iter();
        let mut rounds = 0;
        while delivered.len() < n {
            rounds += 1;
            prop_assert!(rounds < 10_000, "no progress");
            while tx.can_send() && (next_to_queue as usize) < n {
                let seq = tx.next_seq();
                tx.record_sent(seq, Bytes::copy_from_slice(&next_to_queue.to_le_bytes()))
                    .expect("seq from next_seq() under can_send()");
                next_to_queue += 1;
            }
            // "Transmit" the window; some packets get lost.
            let base = tx.next_seq().wrapping_sub(tx.in_flight() as u32);
            let window: Vec<(u32, u32)> = tx
                .unacked()
                .enumerate()
                .map(|(i, b)| (
                    base.wrapping_add(i as u32),
                    u32::from_le_bytes(b[..4].try_into().expect("4")),
                ))
                .collect();
            for (seq, val) in window {
                if losses.next().unwrap_or(false) {
                    continue;
                }
                if rx.on_data(seq) == GbnVerdict::Accept {
                    delivered.push(val);
                }
            }
            tx.on_ack(rx.cum_ack());
        }
        prop_assert_eq!(delivered, (0..n as u32).collect::<Vec<u32>>());
    }

    #[test]
    fn epoch_resync_delivers_exactly_once_under_flaps_and_losses(
        n in 1usize..50,
        flap_pattern in prop::collection::vec(any::<bool>(), 0..64),
        loss_pattern in prop::collection::vec(any::<bool>(), 0..600),
    ) {
        // The full failover model: arbitrary link flaps force epoch resyncs
        // mid-stream, and the EpochSync, EpochSyncAck, data, and ack packets
        // are each subject to independent loss (a lost handshake leg is
        // retried the next round, like the retransmit timer does). Every
        // message must still arrive exactly once, in order.
        let mut tx = EpochSender::new(8);
        let mut rx = EpochReceiver::new();
        let mut delivered: Vec<u32> = Vec::new();
        let mut next_to_queue = 0u32;
        let mut losses = loss_pattern.into_iter();
        let mut flaps = flap_pattern.into_iter();
        let mut rounds = 0;
        while delivered.len() < n {
            rounds += 1;
            prop_assert!(rounds < 20_000, "no progress");
            if flaps.next().unwrap_or(false) {
                // Path death: the kernel fails over and starts a resync.
                tx.begin_resync();
            }
            if tx.is_syncing() {
                if !losses.next().unwrap_or(false) {
                    if let Some(old_cum) = rx.on_sync(tx.epoch(), tx.parked_epoch()) {
                        if !losses.next().unwrap_or(false) {
                            if let Some(tail) = tx.on_sync_ack(tx.epoch(), old_cum) {
                                // Re-stamp the undelivered tail on the fresh
                                // stream, exactly as the MCP does.
                                for pkt in tail {
                                    let seq = tx.next_seq();
                                    tx.record_sent(seq, pkt)
                                        .expect("tail is at most one window");
                                }
                            }
                        }
                    }
                }
                continue; // data is paused until the handshake completes
            }
            while tx.can_send() && (next_to_queue as usize) < n {
                let seq = tx.next_seq();
                tx.record_sent(seq, Bytes::copy_from_slice(&next_to_queue.to_le_bytes()))
                    .expect("seq from next_seq() under can_send()");
                next_to_queue += 1;
            }
            // "Transmit" the window under the current epoch; some packets
            // get lost, and packets from abandoned epochs read as stale.
            let base = tx.next_seq().wrapping_sub(tx.in_flight() as u32);
            let window: Vec<(u32, u32)> = tx
                .unacked()
                .enumerate()
                .map(|(i, b)| (
                    base.wrapping_add(i as u32),
                    u32::from_le_bytes(b[..4].try_into().expect("4")),
                ))
                .collect();
            let epoch = tx.epoch();
            for (seq, val) in window {
                if losses.next().unwrap_or(false) {
                    continue;
                }
                if let EpochVerdict::Gbn(GbnVerdict::Accept) = rx.on_data(epoch, seq) {
                    delivered.push(val);
                }
            }
            if !losses.next().unwrap_or(false) {
                let _ = tx.on_ack(rx.epoch(), rx.cum_ack());
            }
        }
        prop_assert_eq!(delivered, (0..n as u32).collect::<Vec<u32>>());
    }
}

proptest! {
    #[test]
    fn sg_slicing_matches_flat_ranges(
        len in 1u64..30_000,
        a in 0u64..30_000,
        b in 0u64..30_000,
    ) {
        use suca::bcl::sg::{read_sg, sg_total};
        use suca::mem::{AddressSpace, Asid, PhysMemory};
        let (off, want) = (a.min(b) % len, (a.max(b) % len).max(1));
        let take = want.min(len - off);
        let mem = PhysMemory::new(1 << 24);
        let space = AddressSpace::new(Asid(1), mem.clone());
        let base = space.alloc(len).expect("alloc");
        let pattern: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
        space.write(base, &pattern).expect("fill");
        let segs = space.sg_list(base, len).expect("sg");
        prop_assert_eq!(sg_total(&segs), len);
        let got = read_sg(&mem, &segs, off, take).expect("read");
        prop_assert_eq!(&got[..], &pattern[off as usize..(off + take) as usize]);
    }
}
