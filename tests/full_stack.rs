//! Whole-system integration tests spanning every crate: MPI applications
//! over both SANs, faults injected under a full MPI workload, scale-out to
//! the full 70-node DAWNING-3000, and SMP CPU accounting.

use std::sync::Arc;

use parking_lot::Mutex;

use suca::cluster::{ClusterSpec, SanKind};
use suca::eadi::Universe;
use suca::mpi::{Comm, MpiConfig, ReduceOp};
use suca::myrinet::FaultPlan;
use suca::prelude::*;

fn mpi_allreduce_job(spec: ClusterSpec, ranks: u32) -> Vec<f64> {
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let uni = Universe::new(&sim, ranks);
    let nodes = cluster.nodes.len() as u32;
    let out = Arc::new(Mutex::new(Vec::new()));
    for r in 0..ranks {
        let uni = uni.clone();
        let out = out.clone();
        cluster.spawn_process(r % nodes, format!("r{r}"), move |ctx, env| {
            let comm = Comm::init(
                ctx,
                &env.node.bcl,
                &env.proc,
                uni,
                r,
                MpiConfig::dawning3000(),
            );
            let got = comm.allreduce_f64(ctx, &[r as f64, 1.0], ReduceOp::Sum);
            if r == 0 {
                *out.lock() = got;
            }
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed, "MPI job hung");
    let v = out.lock().clone();
    v
}

#[test]
fn mpi_allreduce_identical_over_myrinet_and_mesh() {
    let n = 6u32;
    let expect = vec![(0..n).map(f64::from).sum::<f64>(), n as f64];
    let myri = mpi_allreduce_job(ClusterSpec::dawning3000(3), n);
    let mesh = mpi_allreduce_job(ClusterSpec::dawning3000_mesh(3), n);
    assert_eq!(myri, expect);
    assert_eq!(mesh, expect, "same MPI binary, different SAN, same result");
}

#[test]
fn mpi_survives_lossy_network() {
    // 5 % drops + 5 % corruption on every link; the BCL reliability layer
    // must make MPI collectives exact anyway.
    let mut spec = ClusterSpec::dawning3000(3);
    if let SanKind::Myrinet(ref mut cfg) = spec.san {
        cfg.fault = FaultPlan {
            drop_prob: 0.05,
            corrupt_prob: 0.05,
        };
    }
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let uni = Universe::new(&sim, 6);
    let results = Arc::new(Mutex::new(Vec::new()));
    for r in 0..6u32 {
        let uni = uni.clone();
        let results = results.clone();
        cluster.spawn_process(r % 3, format!("r{r}"), move |ctx, env| {
            let comm = Comm::init(
                ctx,
                &env.node.bcl,
                &env.proc,
                uni,
                r,
                MpiConfig::dawning3000(),
            );
            // A chained computation: bcast -> local work -> reduce.
            let mut seed = vec![0u8; 8];
            if r == 2 {
                seed = 31415u64.to_le_bytes().to_vec();
            }
            comm.bcast(ctx, 2, &mut seed);
            let x = u64::from_le_bytes(seed.clone().try_into().expect("8")) as f64;
            let total = comm.allreduce_f64(ctx, &[x * (r + 1) as f64], ReduceOp::Sum);
            results.lock().push(total[0]);
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed, "lossy MPI job hung");
    let rs = results.lock();
    let expect = 31415.0 * (1..=6).sum::<u64>() as f64;
    assert!(
        rs.iter().all(|&v| v == expect),
        "collective corrupted: {rs:?}"
    );
    assert!(
        sim.get_count("fabric.dropped") + sim.get_count("fabric.corrupted") > 0,
        "faults never fired; test is vacuous"
    );
    assert!(sim.get_count("bcl.retx_packets") > 0, "no retransmissions");
}

#[test]
fn full_dawning_70_nodes_all_to_root() {
    // The full machine: every node sends its id to node 0 over BCL.
    let cluster = ClusterSpec::dawning3000(70).build();
    let sim = cluster.sim.clone();
    let root_addr: Arc<Mutex<Option<suca::bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    let barrier = suca::cluster::SimBarrier::new(&sim, 70);
    let sum = Arc::new(Mutex::new(0u64));

    let s2 = sum.clone();
    let ra = root_addr.clone();
    let b0 = barrier.clone();
    cluster.spawn_process(0, "root", move |ctx, env| {
        let port = env.open_port(ctx);
        *ra.lock() = Some(port.addr());
        b0.wait(ctx);
        for _ in 0..69 {
            let ev = port.wait_recv(ctx);
            let data = port.recv_bytes(ctx, &ev).expect("payload");
            *s2.lock() += u64::from(u32::from_le_bytes(data.try_into().expect("4B")));
        }
    });
    for n in 1..70u32 {
        let ra = root_addr.clone();
        let b = barrier.clone();
        cluster.spawn_process(n, format!("n{n}"), move |ctx, env| {
            let port = env.open_port(ctx);
            b.wait(ctx);
            let dst = ra.lock().expect("root first");
            // Stagger to avoid exhausting the root's 64-buffer system pool.
            ctx.sleep(SimDuration::from_us(30 * u64::from(n)));
            port.send_bytes(ctx, dst, suca::bcl::ChannelId::SYSTEM, &n.to_le_bytes())
                .expect("send");
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed, "70-node job hung");
    assert_eq!(*sum.lock(), (1..70).sum::<u64>());
}

#[test]
fn smp_cpu_slots_bound_parallel_compute() {
    // 6 compute-bound processes on one 4-way node: makespan shows exactly
    // the 4-slot limit.
    let cluster = ClusterSpec::dawning3000(1).build();
    let sim = cluster.sim.clone();
    for i in 0..6 {
        let node = cluster.nodes[0].clone();
        cluster.spawn_process(0, format!("hog{i}"), move |ctx, _env| {
            node.cpus.compute(ctx, SimDuration::from_ms(1));
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed);
    assert_eq!(sim.now().as_us(), 2000.0, "6 jobs / 4 CPUs => 2 waves");
}

#[test]
fn deterministic_replay_same_seed_same_world() {
    let run = || {
        let spec = ClusterSpec::dawning3000(3).with_seed(0xFEED);
        let counters;
        let end;
        {
            let mut spec = spec;
            if let SanKind::Myrinet(ref mut cfg) = spec.san {
                cfg.fault = FaultPlan {
                    drop_prob: 0.02,
                    corrupt_prob: 0.02,
                };
            }
            let cluster = spec.build();
            let sim = cluster.sim.clone();
            let uni = Universe::new(&sim, 3);
            for r in 0..3u32 {
                let uni = uni.clone();
                cluster.spawn_process(r, format!("r{r}"), move |ctx, env| {
                    let comm = Comm::init(
                        ctx,
                        &env.node.bcl,
                        &env.proc,
                        uni,
                        r,
                        MpiConfig::dawning3000(),
                    );
                    let _ = comm.allreduce_f64(ctx, &[f64::from(r)], ReduceOp::Max);
                });
            }
            assert_eq!(sim.run(), RunOutcome::Completed);
            counters = sim.counters();
            end = sim.now().as_ns();
        }
        (counters, end)
    };
    let (c1, t1) = run();
    let (c2, t2) = run();
    assert_eq!(t1, t2, "end times differ between identical runs");
    assert_eq!(c1, c2, "counters differ between identical runs");
}

#[test]
fn thirty_two_rank_allreduce_over_sixteen_nodes() {
    // A quarter of the DAWNING-3000 with 2 ranks per node: collectives
    // crossing many switches and the intra-node path at once.
    let cluster = ClusterSpec::dawning3000(16).build();
    let sim = cluster.sim.clone();
    const R: u32 = 32;
    let uni = Universe::new(&sim, R);
    let checked = Arc::new(Mutex::new(0u32));
    for r in 0..R {
        let uni = uni.clone();
        let checked = checked.clone();
        cluster.spawn_process(r / 2, format!("r{r}"), move |ctx, env| {
            let comm = Comm::init(
                ctx,
                &env.node.bcl,
                &env.proc,
                uni,
                r,
                MpiConfig::dawning3000(),
            );
            comm.barrier(ctx);
            let got = comm.allreduce_f64(ctx, &[f64::from(r), 1.0], ReduceOp::Sum);
            assert_eq!(got, vec![f64::from((0..R).sum::<u32>()), f64::from(R)]);
            // And a broadcast from a non-zero root for good measure.
            let mut blob = if r == 13 {
                vec![0xCD; 9000]
            } else {
                Vec::new()
            };
            comm.bcast(ctx, 13, &mut blob);
            assert_eq!(blob.len(), 9000);
            assert!(blob.iter().all(|b| *b == 0xCD));
            *checked.lock() += 1;
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed, "32-rank job hung");
    assert_eq!(*checked.lock(), R);
}
